package qstate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestPaperWorkedExample reproduces the illustration in §3.1: a queue holds
// one item for 10µs and then four items for 20µs; the integral is
// 1×10 + 4×20 = 90 item·µs, average size 90/30 = 3 items.
func TestPaperWorkedExample(t *testing.T) {
	us := func(n int64) Time { return Time(n * 1000) }
	var s State
	s.Init(0)
	s.Track(us(0), 1)  // one item from t=0
	s.Track(us(10), 3) // four items from t=10µs
	snap0 := Snapshot{}
	snap1 := s.Snapshot(us(30))
	a := GetAvgs(snap0, snap1)
	if math.Abs(a.Q-3) > 1e-9 {
		t.Fatalf("Q = %v, want 3", a.Q)
	}
	if snap1.Integral != 90*1000 {
		t.Fatalf("integral = %d, want 90000 item·ns", snap1.Integral)
	}
}

// TestLittlesLawSingleItem: one item resident for exactly d must yield
// latency d when it is the only departure in the interval.
func TestLittlesLawSingleItem(t *testing.T) {
	var s State
	s.Init(0)
	start := s.Snapshot(0)
	s.Track(100, 1)
	s.Track(100+5000, -1) // resident 5µs
	end := s.Snapshot(10000)
	a := GetAvgs(start, end)
	if !a.Valid {
		t.Fatal("expected valid avgs")
	}
	if a.Latency != 5*time.Microsecond {
		t.Fatalf("latency = %v, want 5µs", a.Latency)
	}
	if a.Departures != 1 {
		t.Fatalf("departures = %d", a.Departures)
	}
}

// TestLittlesLawBatch: k items each resident d ⇒ average latency d.
func TestLittlesLawBatch(t *testing.T) {
	var s State
	s.Init(0)
	start := s.Snapshot(0)
	const k = 7
	s.Track(0, k)
	s.Track(3000, -k)
	end := s.Snapshot(3000)
	a := GetAvgs(start, end)
	if a.Latency != 3*time.Microsecond {
		t.Fatalf("latency = %v, want 3µs", a.Latency)
	}
	if a.Departures != k {
		t.Fatalf("departures = %d, want %d", a.Departures, k)
	}
}

func TestThroughputComputation(t *testing.T) {
	var s State
	s.Init(0)
	start := s.Snapshot(0)
	// 1000 items arrive and depart over 1ms ⇒ λ = 1e6/s.
	for i := int64(0); i < 1000; i++ {
		s.Track(Time(i*1000), 1)
		s.Track(Time(i*1000+500), -1)
	}
	end := s.Snapshot(Time(time.Millisecond))
	a := GetAvgs(start, end)
	if math.Abs(a.Throughput-1e6) > 1 {
		t.Fatalf("throughput = %v, want 1e6", a.Throughput)
	}
	if a.Latency != 500*time.Nanosecond {
		t.Fatalf("latency = %v, want 500ns", a.Latency)
	}
}

func TestTrackZeroAdvancesIntegralOnly(t *testing.T) {
	var s State
	s.Init(0)
	s.Track(0, 2)
	s.Track(10, 0)
	if s.Integral != 20 {
		t.Fatalf("integral = %d, want 20", s.Integral)
	}
	if s.Size != 2 || s.Total != 0 {
		t.Fatalf("size/total changed: %v", s.String())
	}
}

func TestInitNonZeroTime(t *testing.T) {
	var s State
	s.Init(12345)
	s.Track(12345+100, 1)
	if s.Integral != 0 {
		t.Fatalf("integral accumulated while empty: %d", s.Integral)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	var s State
	s.Init(0)
	defer func() {
		if recover() == nil {
			t.Fatal("removing from an empty queue did not panic")
		}
	}()
	s.Track(1, -1)
}

func TestTimeBackwardsPanics(t *testing.T) {
	var s State
	s.Init(100)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time did not panic")
		}
	}()
	s.Track(50, 1)
}

func TestGetAvgsEmptyInterval(t *testing.T) {
	snap := Snapshot{Time: 100, Total: 5, Integral: 50}
	a := GetAvgs(snap, snap)
	if a.Valid {
		t.Fatal("zero-length interval reported valid")
	}
}

func TestGetAvgsIdleInterval(t *testing.T) {
	// Items parked but none departing: Q > 0, latency undefined.
	var s State
	s.Init(0)
	start := s.Snapshot(0)
	s.Track(0, 3)
	end := s.Snapshot(1000)
	a := GetAvgs(start, end)
	if a.Valid {
		t.Fatal("interval with no departures reported valid latency")
	}
	if math.Abs(a.Q-3) > 1e-9 {
		t.Fatalf("Q = %v, want 3", a.Q)
	}
	if a.Throughput != 0 {
		t.Fatalf("throughput = %v, want 0", a.Throughput)
	}
}

func TestSnapshotSub(t *testing.T) {
	var s State
	s.Init(0)
	a := s.Snapshot(0)
	s.Track(10, 1)
	s.Track(20, -1)
	b := s.Snapshot(100)
	if got, want := b.Sub(a).Latency, 10*time.Nanosecond; got != want {
		t.Fatalf("Sub latency = %v, want %v", got, want)
	}
}

// TestPropertyLittlesLaw drives a random arrival/departure schedule, computes
// ground-truth mean residence time assuming FIFO order, and checks GetAvgs
// agrees. This is the central correctness property of the whole paper.
func TestPropertyLittlesLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var s State
		s.Init(0)
		start := s.Snapshot(0)
		now := Time(0)
		var arrivals []Time // FIFO arrival times of items still queued
		var totalResidence time.Duration
		departed := 0
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			now += Time(1 + rng.Int63n(10000))
			if len(arrivals) > 0 && rng.Intn(2) == 0 {
				// depart one (FIFO)
				totalResidence += time.Duration(now - arrivals[0])
				arrivals = arrivals[1:]
				departed++
				s.Track(now, -1)
			} else {
				arrivals = append(arrivals, now)
				s.Track(now, 1)
			}
		}
		// Drain the queue so every arrival is accounted for.
		for _, at := range arrivals {
			now += Time(1 + rng.Int63n(10000))
			totalResidence += time.Duration(now - at)
			departed++
			s.Track(now, -1)
		}
		arrivals = nil
		end := s.Snapshot(now)
		a := GetAvgs(start, end)
		if departed == 0 {
			continue
		}
		want := totalResidence / time.Duration(departed)
		if a.Departures != int64(departed) {
			t.Fatalf("trial %d: departures %d, want %d", trial, a.Departures, departed)
		}
		diff := a.Latency - want
		if diff < 0 {
			diff = -diff
		}
		if diff > time.Nanosecond {
			t.Fatalf("trial %d: latency %v, ground truth %v", trial, a.Latency, want)
		}
	}
}

// TestPropertyIntegralMonotonic: the integral never decreases, and total is
// non-decreasing, regardless of the schedule.
func TestPropertyIntegralMonotonic(t *testing.T) {
	check := func(deltas []int8, gaps []uint16) bool {
		var s State
		s.Init(0)
		now := Time(0)
		prevIntegral, prevTotal := int64(0), int64(0)
		for i, d := range deltas {
			gap := Time(1)
			if i < len(gaps) {
				gap = Time(gaps[i]) + 1
			}
			now += gap
			delta := int64(d)
			if s.Size+delta < 0 {
				delta = -s.Size
			}
			s.Track(now, delta)
			if s.Integral < prevIntegral || s.Total < prevTotal {
				return false
			}
			prevIntegral, prevTotal = s.Integral, s.Total
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySnapshotAdditivity: avgs over [a,c] is consistent with the
// time-weighted combination of [a,b] and [b,c].
func TestPropertySnapshotAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var s State
		s.Init(0)
		a := s.Snapshot(0)
		now := Time(0)
		step := func(k int) Snapshot {
			for i := 0; i < k; i++ {
				now += Time(1 + rng.Int63n(100))
				if s.Size > 0 && rng.Intn(2) == 0 {
					s.Track(now, -1)
				} else {
					s.Track(now, 1)
				}
			}
			now += 1
			return s.Snapshot(now)
		}
		b := step(30)
		c := step(30)
		full := GetAvgs(a, c)
		p1 := GetAvgs(a, b)
		p2 := GetAvgs(b, c)
		if p1.Departures+p2.Departures != full.Departures {
			t.Fatalf("departures not additive")
		}
		// Integral additivity: Q weighted by elapsed time.
		lhs := full.Q * full.Elapsed.Seconds()
		rhs := p1.Q*p1.Elapsed.Seconds() + p2.Q*p2.Elapsed.Seconds()
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("integral not additive: %v vs %v", lhs, rhs)
		}
	}
}
