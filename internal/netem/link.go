// Package netem models the wire between the two endpoints: a full-duplex
// point-to-point link with finite serialization rate, propagation delay and
// a FIFO NIC transmit queue — the stand-in for the paper's 100 Gbps
// ConnectX-5 back-to-back connection.
//
// Optional jitter and loss support the failure-injection tests; the paper's
// experiments run loss-free.
package netem

import (
	"fmt"
	"time"

	"e2ebatch/internal/sim"
)

// Config describes one direction of a link.
type Config struct {
	// BitsPerSec is the serialization rate. Zero means infinitely fast
	// (no serialization delay).
	BitsPerSec int64
	// Propagation is the one-way propagation delay.
	Propagation time.Duration
	// PerPacketOverhead is extra wire time per packet (preamble, IFG,
	// headers not included in the payload size).
	PerPacketOverhead time.Duration
	// Jitter, if positive, adds uniformly distributed extra delay in
	// [0, Jitter) to each packet's propagation.
	Jitter time.Duration
	// LossProb drops each packet independently with this probability.
	LossProb float64
}

// DefaultConfig approximates one direction of the paper's testbed link:
// 100 Gbps with a few microseconds of one-way delay (switchless,
// back-to-back, but including NIC/DMA latency).
func DefaultConfig() Config {
	return Config{
		BitsPerSec:        100_000_000_000,
		Propagation:       2 * time.Microsecond,
		PerPacketOverhead: 0,
	}
}

// Pipe is one direction of a link. Packets handed to Send serialize in FIFO
// order at the configured rate, then arrive after the propagation delay.
type Pipe struct {
	sim  *sim.Sim
	name string
	cfg  Config

	lastDepart sim.Time
	lastArrive sim.Time

	// stats
	packets uint64
	bytes   uint64
	dropped uint64
}

// checkLossProb panics unless p is a valid drop probability. The valid range
// is [0, 1): probability 1 would drop every packet, which no amount of
// retransmission recovers from — a disconnected wire is a topology choice,
// not a loss parameter.
func checkLossProb(p float64) {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("netem: LossProb %v outside [0, 1)", p))
	}
}

// NewPipe returns one direction of a link.
func NewPipe(s *sim.Sim, name string, cfg Config) *Pipe {
	checkLossProb(cfg.LossProb)
	return &Pipe{sim: s, name: name, cfg: cfg}
}

// SetLossProb changes the drop probability at runtime — the fault-injection
// knob for loss bursts. It panics outside [0, 1), like NewPipe.
func (p *Pipe) SetLossProb(prob float64) {
	checkLossProb(prob)
	p.cfg.LossProb = prob
}

// LossProb returns the current drop probability.
func (p *Pipe) LossProb() float64 { return p.cfg.LossProb }

// SetJitter changes the per-packet jitter bound at runtime — the
// fault-injection knob for jitter ramps. Negative values clamp to zero.
// Jittered arrivals remain FIFO-clamped (see Send), so raising jitter never
// reorders the wire.
func (p *Pipe) SetJitter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.cfg.Jitter = d
}

// Jitter returns the current jitter bound.
func (p *Pipe) Jitter() time.Duration { return p.cfg.Jitter }

// Send enqueues a packet of size bytes. deliver runs at the packet's arrival
// time at the far end; it is not called if the packet is dropped. Send
// returns the arrival time (or the drop decision time for dropped packets).
func (p *Pipe) Send(size int, deliver func()) sim.Time {
	now := p.sim.Now()
	if p.cfg.LossProb > 0 && p.sim.Rand().Float64() < p.cfg.LossProb {
		p.dropped++
		return now
	}
	start := now
	if p.lastDepart > start {
		start = p.lastDepart
	}
	ser := p.serialization(size)
	depart := start.Add(ser)
	p.lastDepart = depart
	prop := p.cfg.Propagation
	if p.cfg.Jitter > 0 {
		prop += time.Duration(p.sim.Rand().Int63n(int64(p.cfg.Jitter)))
	}
	arrive := depart.Add(prop)
	// A point-to-point wire cannot reorder: jittered arrivals are clamped
	// to FIFO order (consumers such as tcpsim rely on in-order delivery).
	if arrive < p.lastArrive {
		arrive = p.lastArrive
	}
	p.lastArrive = arrive
	p.packets++
	p.bytes += uint64(size)
	p.sim.At(arrive, deliver)
	return arrive
}

func (p *Pipe) serialization(size int) time.Duration {
	d := p.cfg.PerPacketOverhead
	if p.cfg.BitsPerSec > 0 {
		d += time.Duration(int64(size) * 8 * int64(time.Second) / p.cfg.BitsPerSec)
	}
	return d
}

// QueueDelay reports how long a packet submitted now would wait before
// starting serialization.
func (p *Pipe) QueueDelay() time.Duration {
	now := p.sim.Now()
	if p.lastDepart <= now {
		return 0
	}
	return p.lastDepart.Sub(now)
}

// Stats returns cumulative packet, byte and drop counts.
func (p *Pipe) Stats() (packets, bytes, dropped uint64) {
	return p.packets, p.bytes, p.dropped
}

// String describes the pipe.
func (p *Pipe) String() string {
	return fmt.Sprintf("pipe(%s): pkts=%d bytes=%d dropped=%d", p.name, p.packets, p.bytes, p.dropped)
}

// Link is a full-duplex pair of pipes between endpoints A and B.
type Link struct {
	AtoB *Pipe
	BtoA *Pipe
}

// NewLink builds a symmetric full-duplex link.
func NewLink(s *sim.Sim, name string, cfg Config) *Link {
	return &Link{
		AtoB: NewPipe(s, name+":a->b", cfg),
		BtoA: NewPipe(s, name+":b->a", cfg),
	}
}

// SetLossProb applies a drop probability to both directions.
func (l *Link) SetLossProb(p float64) {
	l.AtoB.SetLossProb(p)
	l.BtoA.SetLossProb(p)
}

// SetJitter applies a jitter bound to both directions.
func (l *Link) SetJitter(d time.Duration) {
	l.AtoB.SetJitter(d)
	l.BtoA.SetJitter(d)
}
