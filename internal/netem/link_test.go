package netem

import (
	"fmt"
	"testing"
	"time"

	"e2ebatch/internal/sim"
)

func gbpsCfg(gbps int64, prop time.Duration) Config {
	return Config{BitsPerSec: gbps * 1_000_000_000, Propagation: prop}
}

func TestSendDeliversAfterSerializationAndPropagation(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", gbpsCfg(1, 100*time.Nanosecond)) // 1 Gbps: 8ns/byte
	var at sim.Time
	p.Send(125, func() { at = s.Now() }) // 125B = 1000 bits = 1µs at 1Gbps
	s.Run()
	want := sim.Time(0).Add(time.Microsecond + 100*time.Nanosecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSendFIFOSerialization(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", gbpsCfg(1, 0))
	var arrivals []sim.Time
	rec := func() { arrivals = append(arrivals, s.Now()) }
	p.Send(125, rec) // finishes serializing at 1µs
	p.Send(125, rec) // queues behind: 2µs
	s.Run()
	if arrivals[0] != sim.Time(time.Microsecond) || arrivals[1] != sim.Time(2*time.Microsecond) {
		t.Fatalf("arrivals = %v", arrivals)
	}
}

func TestSendAfterIdleNoStaleQueue(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", gbpsCfg(1, 0))
	p.Send(125, func() {})
	s.RunUntil(sim.Time(10 * time.Microsecond))
	var at sim.Time
	p.Send(125, func() { at = s.Now() })
	s.Run()
	if at != sim.Time(11*time.Microsecond) {
		t.Fatalf("delivered at %v, want 11µs", at)
	}
}

func TestInfiniteRate(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", Config{Propagation: 5 * time.Nanosecond})
	var at sim.Time
	p.Send(1<<20, func() { at = s.Now() })
	s.Run()
	if at != 5 {
		t.Fatalf("delivered at %v, want 5 (no serialization)", at)
	}
}

func TestPerPacketOverhead(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", Config{PerPacketOverhead: 10 * time.Nanosecond})
	var at sim.Time
	p.Send(100, func() { at = s.Now() })
	s.Run()
	if at != 10 {
		t.Fatalf("delivered at %v, want 10", at)
	}
}

func TestQueueDelay(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", gbpsCfg(1, 0))
	if p.QueueDelay() != 0 {
		t.Fatal("fresh pipe has queue delay")
	}
	p.Send(1250, func() {}) // 10µs serialization
	if p.QueueDelay() != 10*time.Microsecond {
		t.Fatalf("queue delay = %v, want 10µs", p.QueueDelay())
	}
}

func TestStats(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", Config{})
	p.Send(10, func() {})
	p.Send(20, func() {})
	pk, by, dr := p.Stats()
	if pk != 2 || by != 30 || dr != 0 {
		t.Fatalf("stats = %d,%d,%d", pk, by, dr)
	}
}

func TestLossDropsAndNeverDelivers(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", Config{LossProb: 1.0 - 1e-12})
	delivered := 0
	for i := 0; i < 100; i++ {
		p.Send(10, func() { delivered++ })
	}
	s.Run()
	_, _, dr := p.Stats()
	if dr == 0 {
		t.Fatal("no drops with ~certain loss")
	}
	if delivered != 100-int(dr) {
		t.Fatalf("delivered %d with %d drops", delivered, dr)
	}
}

// TestLossProbBoundaries pins the valid range [0, 1) exactly: both
// boundaries, both sides of each, and the same contract on the runtime
// knob. LossProb == 1 in particular used to reach the panic only through a
// convoluted double branch — it must reject like any other out-of-range
// value.
func TestLossProbBoundaries(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	s := sim.New(1)
	for _, p := range []float64{0, 1e-12, 0.5, 1 - 1e-12} {
		NewPipe(s, "ok", Config{LossProb: p}) // must not panic
	}
	for _, p := range []float64{-1e-12, -0.5, 1, 1.5} {
		p := p
		mustPanic(fmt.Sprintf("NewPipe(LossProb=%v)", p), func() {
			NewPipe(s, "bad", Config{LossProb: p})
		})
	}
	pipe := NewPipe(s, "knob", Config{})
	pipe.SetLossProb(0.25)
	if pipe.LossProb() != 0.25 {
		t.Fatalf("LossProb = %v after SetLossProb(0.25)", pipe.LossProb())
	}
	mustPanic("SetLossProb(1)", func() { pipe.SetLossProb(1) })
	mustPanic("SetLossProb(-0.1)", func() { pipe.SetLossProb(-0.1) })
	if pipe.LossProb() != 0.25 {
		t.Fatalf("rejected SetLossProb mutated the pipe: %v", pipe.LossProb())
	}
}

// TestRuntimeKnobsAffectTraffic: loss and jitter set mid-run via the Link
// setters take effect and restore cleanly.
func TestRuntimeKnobsAffectTraffic(t *testing.T) {
	s := sim.New(5)
	l := NewLink(s, "lnk", Config{Propagation: 100 * time.Nanosecond})
	delivered := 0
	for i := 0; i < 50; i++ {
		l.AtoB.Send(10, func() { delivered++ })
	}
	s.Run()
	if delivered != 50 {
		t.Fatalf("lossless phase delivered %d/50", delivered)
	}
	l.SetLossProb(1 - 1e-12)
	for i := 0; i < 50; i++ {
		l.AtoB.Send(10, func() { delivered++ })
	}
	s.Run()
	_, _, dr := l.AtoB.Stats()
	if dr == 0 {
		t.Fatal("no drops after SetLossProb")
	}
	l.SetLossProb(0)
	l.SetJitter(time.Microsecond)
	if l.AtoB.Jitter() != time.Microsecond || l.BtoA.Jitter() != time.Microsecond {
		t.Fatal("SetJitter did not reach both pipes")
	}
	l.SetJitter(-time.Second)
	if l.AtoB.Jitter() != 0 {
		t.Fatalf("negative jitter not clamped: %v", l.AtoB.Jitter())
	}
}

func TestJitterAddsBoundedDelay(t *testing.T) {
	s := sim.New(1)
	cfg := Config{Propagation: 100 * time.Nanosecond, Jitter: 50 * time.Nanosecond}
	p := NewPipe(s, "t", cfg)
	for i := 0; i < 200; i++ {
		sent := s.Now()
		p.Send(0, func() {})
		arr, ok := s.NextAt()
		if !ok {
			t.Fatal("no event")
		}
		d := arr.Sub(sent)
		if d < 100*time.Nanosecond || d >= 150*time.Nanosecond {
			t.Fatalf("delay %v outside [100ns,150ns)", d)
		}
		s.Run()
	}
}

func TestLinkIsFullDuplex(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "lnk", gbpsCfg(1, 0))
	var a2b, b2a sim.Time
	l.AtoB.Send(125, func() { a2b = s.Now() })
	l.BtoA.Send(125, func() { b2a = s.Now() })
	s.Run()
	// The directions must not serialize behind each other.
	if a2b != sim.Time(time.Microsecond) || b2a != sim.Time(time.Microsecond) {
		t.Fatalf("a2b=%v b2a=%v, want both 1µs", a2b, b2a)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BitsPerSec != 100_000_000_000 {
		t.Fatalf("default rate = %d", cfg.BitsPerSec)
	}
	if cfg.Propagation <= 0 {
		t.Fatal("default propagation not positive")
	}
}

func TestJitterNeverReorders(t *testing.T) {
	s := sim.New(3)
	p := NewPipe(s, "t", Config{Propagation: 100 * time.Nanosecond, Jitter: 5 * time.Microsecond})
	var order []int
	for i := 0; i < 500; i++ {
		i := i
		p.Send(10, func() { order = append(order, i) })
	}
	s.Run()
	if len(order) != 500 {
		t.Fatalf("delivered %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered delivery at %d: got %d (jitter must preserve FIFO)", i, v)
		}
	}
}

func TestJitteredArrivalsMonotonic(t *testing.T) {
	s := sim.New(9)
	p := NewPipe(s, "t", Config{Propagation: time.Microsecond, Jitter: 10 * time.Microsecond})
	last := sim.Time(-1)
	ok := true
	for i := 0; i < 300; i++ {
		p.Send(1, func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
		s.RunFor(500 * time.Nanosecond)
	}
	s.Run()
	if !ok {
		t.Fatal("arrival times went backwards")
	}
}
