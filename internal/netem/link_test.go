package netem

import (
	"testing"
	"time"

	"e2ebatch/internal/sim"
)

func gbpsCfg(gbps int64, prop time.Duration) Config {
	return Config{BitsPerSec: gbps * 1_000_000_000, Propagation: prop}
}

func TestSendDeliversAfterSerializationAndPropagation(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", gbpsCfg(1, 100*time.Nanosecond)) // 1 Gbps: 8ns/byte
	var at sim.Time
	p.Send(125, func() { at = s.Now() }) // 125B = 1000 bits = 1µs at 1Gbps
	s.Run()
	want := sim.Time(0).Add(time.Microsecond + 100*time.Nanosecond)
	if at != want {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSendFIFOSerialization(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", gbpsCfg(1, 0))
	var arrivals []sim.Time
	rec := func() { arrivals = append(arrivals, s.Now()) }
	p.Send(125, rec) // finishes serializing at 1µs
	p.Send(125, rec) // queues behind: 2µs
	s.Run()
	if arrivals[0] != sim.Time(time.Microsecond) || arrivals[1] != sim.Time(2*time.Microsecond) {
		t.Fatalf("arrivals = %v", arrivals)
	}
}

func TestSendAfterIdleNoStaleQueue(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", gbpsCfg(1, 0))
	p.Send(125, func() {})
	s.RunUntil(sim.Time(10 * time.Microsecond))
	var at sim.Time
	p.Send(125, func() { at = s.Now() })
	s.Run()
	if at != sim.Time(11*time.Microsecond) {
		t.Fatalf("delivered at %v, want 11µs", at)
	}
}

func TestInfiniteRate(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", Config{Propagation: 5 * time.Nanosecond})
	var at sim.Time
	p.Send(1<<20, func() { at = s.Now() })
	s.Run()
	if at != 5 {
		t.Fatalf("delivered at %v, want 5 (no serialization)", at)
	}
}

func TestPerPacketOverhead(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", Config{PerPacketOverhead: 10 * time.Nanosecond})
	var at sim.Time
	p.Send(100, func() { at = s.Now() })
	s.Run()
	if at != 10 {
		t.Fatalf("delivered at %v, want 10", at)
	}
}

func TestQueueDelay(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", gbpsCfg(1, 0))
	if p.QueueDelay() != 0 {
		t.Fatal("fresh pipe has queue delay")
	}
	p.Send(1250, func() {}) // 10µs serialization
	if p.QueueDelay() != 10*time.Microsecond {
		t.Fatalf("queue delay = %v, want 10µs", p.QueueDelay())
	}
}

func TestStats(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", Config{})
	p.Send(10, func() {})
	p.Send(20, func() {})
	pk, by, dr := p.Stats()
	if pk != 2 || by != 30 || dr != 0 {
		t.Fatalf("stats = %d,%d,%d", pk, by, dr)
	}
}

func TestLossDropsAndNeverDelivers(t *testing.T) {
	s := sim.New(1)
	p := NewPipe(s, "t", Config{LossProb: 1.0 - 1e-12})
	delivered := 0
	for i := 0; i < 100; i++ {
		p.Send(10, func() { delivered++ })
	}
	s.Run()
	_, _, dr := p.Stats()
	if dr == 0 {
		t.Fatal("no drops with ~certain loss")
	}
	if delivered != 100-int(dr) {
		t.Fatalf("delivered %d with %d drops", delivered, dr)
	}
}

func TestInvalidLossProbPanics(t *testing.T) {
	s := sim.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("LossProb >= 1 did not panic")
		}
	}()
	NewPipe(s, "t", Config{LossProb: 1.5})
}

func TestJitterAddsBoundedDelay(t *testing.T) {
	s := sim.New(1)
	cfg := Config{Propagation: 100 * time.Nanosecond, Jitter: 50 * time.Nanosecond}
	p := NewPipe(s, "t", cfg)
	for i := 0; i < 200; i++ {
		sent := s.Now()
		p.Send(0, func() {})
		arr, ok := s.NextAt()
		if !ok {
			t.Fatal("no event")
		}
		d := arr.Sub(sent)
		if d < 100*time.Nanosecond || d >= 150*time.Nanosecond {
			t.Fatalf("delay %v outside [100ns,150ns)", d)
		}
		s.Run()
	}
}

func TestLinkIsFullDuplex(t *testing.T) {
	s := sim.New(1)
	l := NewLink(s, "lnk", gbpsCfg(1, 0))
	var a2b, b2a sim.Time
	l.AtoB.Send(125, func() { a2b = s.Now() })
	l.BtoA.Send(125, func() { b2a = s.Now() })
	s.Run()
	// The directions must not serialize behind each other.
	if a2b != sim.Time(time.Microsecond) || b2a != sim.Time(time.Microsecond) {
		t.Fatalf("a2b=%v b2a=%v, want both 1µs", a2b, b2a)
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.BitsPerSec != 100_000_000_000 {
		t.Fatalf("default rate = %d", cfg.BitsPerSec)
	}
	if cfg.Propagation <= 0 {
		t.Fatal("default propagation not positive")
	}
}

func TestJitterNeverReorders(t *testing.T) {
	s := sim.New(3)
	p := NewPipe(s, "t", Config{Propagation: 100 * time.Nanosecond, Jitter: 5 * time.Microsecond})
	var order []int
	for i := 0; i < 500; i++ {
		i := i
		p.Send(10, func() { order = append(order, i) })
	}
	s.Run()
	if len(order) != 500 {
		t.Fatalf("delivered %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("reordered delivery at %d: got %d (jitter must preserve FIFO)", i, v)
		}
	}
}

func TestJitteredArrivalsMonotonic(t *testing.T) {
	s := sim.New(9)
	p := NewPipe(s, "t", Config{Propagation: time.Microsecond, Jitter: 10 * time.Microsecond})
	last := sim.Time(-1)
	ok := true
	for i := 0; i < 300; i++ {
		p.Send(1, func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
		s.RunFor(500 * time.Nanosecond)
	}
	s.Run()
	if !ok {
		t.Fatal("arrival times went backwards")
	}
}
