package loadgen

import (
	"testing"
	"time"

	"e2ebatch/internal/hints"
	"e2ebatch/internal/kv"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// rig builds client+server stacks with a kv server attached.
func rig(t testing.TB, nagle bool) (*sim.Sim, *Generator, func(cfg Config, mk RequestMaker) *Generator, *kv.SimServer) {
	t.Helper()
	s := sim.New(42)
	cs := tcpsim.NewStack(s, "client")
	ss := tcpsim.NewStack(s, "server")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	ccfg := tcpsim.DefaultConfig()
	ccfg.Nagle = nagle
	cc, sc := tcpsim.Connect(cs, ss, link, ccfg)
	store := kv.NewStore(func() time.Duration { return s.Now().Duration() })
	srv := kv.NewSimServer(kv.NewEngine(store), sc, kv.DefaultSimServerConfig())
	mkGen := func(cfg Config, mk RequestMaker) *Generator {
		return New(s, cc, cfg, mk)
	}
	return s, nil, mkGen, srv
}

func TestLowLoadLatencySane(t *testing.T) {
	_, _, mkGen, srv := rig(t, false)
	cfg := DefaultConfig(5000, 100*time.Millisecond)
	g := mkGen(cfg, SetWorkload(16, 1024))
	res := g.Run()
	if res.Issued == 0 || res.Completed == 0 {
		t.Fatalf("nothing ran: %+v", res)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d at trivial load", res.Dropped)
	}
	mean := res.MeanLatency()
	if mean < 5*time.Microsecond || mean > 200*time.Microsecond {
		t.Fatalf("mean latency = %v, implausible at low load", mean)
	}
	if srv.Stats().Requests < res.Completed {
		t.Fatalf("server saw %d < client completed %d", srv.Stats().Requests, res.Completed)
	}
}

func TestOfferedRateMatchesIssuePattern(t *testing.T) {
	_, _, mkGen, _ := rig(t, false)
	cfg := DefaultConfig(20000, 100*time.Millisecond)
	cfg.Arrival = Uniform
	g := mkGen(cfg, PingWorkload())
	res := g.Run()
	// Uniform at 20k over 100ms ⇒ ~2000 issued.
	if res.Issued < 1990 || res.Issued > 2010 {
		t.Fatalf("issued = %d, want ~2000", res.Issued)
	}
	if res.AchievedRate < 0.9*cfg.Rate || res.AchievedRate > 1.1*cfg.Rate {
		t.Fatalf("achieved = %v, want ~%v", res.AchievedRate, cfg.Rate)
	}
}

func TestPoissonArrivalsApproximateRate(t *testing.T) {
	_, _, mkGen, _ := rig(t, false)
	cfg := DefaultConfig(30000, 200*time.Millisecond)
	g := mkGen(cfg, PingWorkload())
	res := g.Run()
	want := 30000 * 0.2
	if float64(res.Issued) < 0.9*want || float64(res.Issued) > 1.1*want {
		t.Fatalf("issued = %d, want ~%v", res.Issued, want)
	}
}

func TestWarmupDiscardsEarlySamples(t *testing.T) {
	_, _, mkGen, _ := rig(t, false)
	cfg := DefaultConfig(10000, 100*time.Millisecond)
	cfg.Arrival = Uniform
	cfg.Warmup = 50 * time.Millisecond
	g := mkGen(cfg, PingWorkload())
	res := g.Run()
	// Only the second half should be sampled: ~500 of ~1000.
	if res.Latency.Count() > res.Completed*6/10 || res.Latency.Count() < res.Completed*4/10 {
		t.Fatalf("sampled %d of %d completed; warmup filter broken", res.Latency.Count(), res.Completed)
	}
}

func TestMixedWorkloadKinds(t *testing.T) {
	_, _, mkGen, srv := rig(t, false)
	// Preload keys so early GETs hit.
	for _, k := range makeKeys(16, 16) {
		srv.Engine().Store().Set(string(k), make([]byte, 2048), 0)
	}
	cfg := DefaultConfig(20000, 200*time.Millisecond)
	cfg.Warmup = 0
	g := mkGen(cfg, MixedWorkload(16, 2048, 950))
	res := g.Run()
	sets := res.ByKind[KindSet]
	gets := res.ByKind[KindGet]
	if sets == nil || gets == nil {
		t.Fatalf("kinds missing: %v", res.ByKind)
	}
	ratio := float64(gets.Count()) / float64(sets.Count()+gets.Count())
	if ratio < 0.03 || ratio > 0.08 {
		t.Fatalf("GET share = %v, want ~0.05", ratio)
	}
}

func TestHintsTrackerMatchesMeasuredLatency(t *testing.T) {
	s, _, mkGen, _ := rig(t, false)
	cfg := DefaultConfig(10000, 200*time.Millisecond)
	cfg.Warmup = 0
	g := mkGen(cfg, SetWorkload(16, 1024))
	tr := hints.NewTracker(func() qstate.Time { return qstate.Time(s.Now()) })
	g.Hints = tr
	est := hints.NewEstimator(tr)
	est.Sample() // prime at t=0
	res := g.Run()
	a := est.Sample()
	if !a.Valid {
		t.Fatal("hint estimate invalid")
	}
	if a.Departures != int64(res.Completed) {
		t.Fatalf("hint departures = %d, completed = %d", a.Departures, res.Completed)
	}
	// The hint latency is request→response including client read; the
	// measured mean is the same quantity. They must agree closely.
	// (Hints complete at parse time; measurement records at the same
	// instant — allow small slack for the unsampled warmup-free edges.)
	meas := float64(res.Latency.Mean())
	hint := float64(a.Latency)
	if hint < 0.8*meas || hint > 1.25*meas {
		t.Fatalf("hint latency %v vs measured %v", a.Latency, res.Latency.Mean())
	}
}

func TestOverloadDegradesGracefully(t *testing.T) {
	// Far beyond server capacity: the generator must survive, latency
	// must blow up, achieved rate must saturate below offered.
	_, _, mkGen, _ := rig(t, false)
	cfg := DefaultConfig(300000, 50*time.Millisecond)
	cfg.Drain = 20 * time.Millisecond
	g := mkGen(cfg, SetWorkload(16, 4096))
	res := g.Run()
	if res.AchievedRate >= cfg.Rate*0.9 {
		t.Fatalf("achieved %v at offered %v: no saturation?", res.AchievedRate, cfg.Rate)
	}
	if res.Latency.Count() > 0 && res.Latency.Mean() < 100*time.Microsecond {
		t.Fatalf("overload mean latency = %v, implausibly low", res.Latency.Mean())
	}
}

func TestNagleVsNoDelayBothComplete(t *testing.T) {
	for _, nagle := range []bool{true, false} {
		_, _, mkGen, _ := rig(t, nagle)
		cfg := DefaultConfig(10000, 100*time.Millisecond)
		g := mkGen(cfg, SetWorkload(16, 16384))
		res := g.Run()
		if res.Dropped != 0 {
			t.Fatalf("nagle=%v: dropped %d", nagle, res.Dropped)
		}
		if res.Latency.Count() == 0 {
			t.Fatalf("nagle=%v: no samples", nagle)
		}
	}
}

func TestPanicsOnBadConfig(t *testing.T) {
	s := sim.New(1)
	for i, f := range []func(){
		func() { New(s, nil, Config{Rate: 0, Duration: time.Second}, PingWorkload()) },
		func() { New(s, nil, Config{Rate: 100, Duration: 0}, PingWorkload()) },
		func() { New(s, nil, Config{Rate: 100, Duration: time.Second}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() string {
		_, _, mkGen, _ := rig(t, true)
		cfg := DefaultConfig(25000, 100*time.Millisecond)
		g := mkGen(cfg, SetWorkload(16, 16384))
		return g.Run().String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic:\n%s\n%s", a, b)
	}
}

func TestClosedLoopMaintainsConcurrency(t *testing.T) {
	_, _, mkGen, srv := rig(t, false)
	cfg := DefaultConfig(1, 100*time.Millisecond) // rate ignored
	cfg.Concurrency = 8
	cfg.Warmup = 0
	g := mkGen(cfg, SetWorkload(16, 1024))
	res := g.Run()
	if res.Dropped != 0 {
		t.Fatalf("dropped %d", res.Dropped)
	}
	if res.Completed < 100 {
		t.Fatalf("completed = %d, closed loop barely ran", res.Completed)
	}
	if srv.Stats().Requests < res.Completed {
		t.Fatalf("server saw fewer requests than completed")
	}
	// Self-clocked: achieved rate is whatever the pipeline sustains; it
	// must be substantial with 8 outstanding 1 KiB SETs.
	if res.AchievedRate < 10000 {
		t.Fatalf("achieved = %v, implausibly low for depth-8 closed loop", res.AchievedRate)
	}
}

func TestClosedLoopDepthOneIsPingPong(t *testing.T) {
	_, _, mkGen, _ := rig(t, true) // Nagle on
	cfg := DefaultConfig(1, 50*time.Millisecond)
	cfg.Concurrency = 1
	cfg.Warmup = 0
	g := mkGen(cfg, PingWorkload())
	res := g.Run()
	if res.Dropped != 0 {
		t.Fatalf("dropped %d", res.Dropped)
	}
	// With exactly one outstanding request there is never unACKed data
	// at send time, so Nagle cannot hold anything: latency must match
	// the unloaded round trip (tens of µs), not a delack timeout.
	if res.Latency.Mean() > 100*time.Microsecond {
		t.Fatalf("depth-1 closed-loop mean = %v; Nagle held despite empty pipe", res.Latency.Mean())
	}
	if res.Latency.Max() > 2*time.Millisecond {
		t.Fatalf("depth-1 max = %v", res.Latency.Max())
	}
}

func TestClosedLoopStopsAtDuration(t *testing.T) {
	s, _, mkGen, _ := rig(t, false)
	_ = s
	cfg := DefaultConfig(1, 20*time.Millisecond)
	cfg.Concurrency = 4
	g := mkGen(cfg, PingWorkload())
	res := g.Run()
	if res.Dropped != 0 {
		t.Fatalf("dropped %d (window not drained)", res.Dropped)
	}
	if res.Issued < res.Completed {
		t.Fatalf("issued %d < completed %d", res.Issued, res.Completed)
	}
}

func TestConfigValidationClosedLoop(t *testing.T) {
	s := sim.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate and zero concurrency accepted")
		}
	}()
	New(s, nil, Config{Duration: time.Second}, PingWorkload())
}

func TestWindowSeries(t *testing.T) {
	_, _, mkGen, _ := rig(t, false)
	cfg := DefaultConfig(10000, 100*time.Millisecond)
	cfg.Arrival = Uniform
	cfg.WindowEvery = 10 * time.Millisecond
	g := mkGen(cfg, PingWorkload())
	res := g.Run()
	if len(res.Windows) < 9 || len(res.Windows) > 12 {
		t.Fatalf("windows = %d, want ~10", len(res.Windows))
	}
	var sum uint64
	for i, w := range res.Windows {
		if w.Start != time.Duration(i)*cfg.WindowEvery {
			t.Fatalf("window %d start = %v", i, w.Start)
		}
		if w.Count > 0 && (w.Mean() <= 0 || w.Mean() > time.Millisecond) {
			t.Fatalf("window %d mean = %v", i, w.Mean())
		}
		sum += w.Count
	}
	if sum != res.Completed {
		t.Fatalf("window counts %d != completed %d", sum, res.Completed)
	}
	if (Window{}).Mean() != 0 {
		t.Fatal("empty window mean should be 0")
	}
}
