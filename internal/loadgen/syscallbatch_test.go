package loadgen

import (
	"testing"
	"time"

	"e2ebatch/internal/hints"
	"e2ebatch/internal/kv"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

func TestSyscallBatchReducesSends(t *testing.T) {
	s := sim.New(42)
	_, _, mkGen, _ := rigOn(t, s)
	cfg := DefaultConfig(20000, 100*time.Millisecond)
	cfg.Arrival = Uniform
	cfg.SyscallBatch = 4
	g := mkGen(cfg, PingWorkload())
	res := g.Run()
	if res.Dropped != 0 {
		t.Fatalf("dropped %d", res.Dropped)
	}
	sends := g.conn.Stats().Sends
	// ~2000 requests in ~500 sends (plus the final partial flush).
	if sends > res.Issued/3 {
		t.Fatalf("sends = %d for %d requests; syscall batching inactive", sends, res.Issued)
	}
}

func TestSyscallBatchAddsUserspaceWait(t *testing.T) {
	s := sim.New(42)
	_, _, mkGen, _ := rigOn(t, s)
	base := DefaultConfig(10000, 100*time.Millisecond)
	base.Arrival = Uniform
	base.Warmup = 0
	plain := mkGen(base, PingWorkload()).Run()

	s2 := sim.New(42)
	_, _, mkGen2, _ := rigOn(t, s2)
	batched := base
	batched.SyscallBatch = 8
	bres := mkGen2(batched, PingWorkload()).Run()

	// With 100µs inter-arrivals and batches of 8, the first request of
	// each batch waits ~700µs in userspace: mean latency must be much
	// higher than the per-request-send baseline.
	if bres.Latency.Mean() < 3*plain.Latency.Mean() {
		t.Fatalf("batched mean %v vs plain %v: expected large userspace wait", bres.Latency.Mean(), plain.Latency.Mean())
	}
}

func TestSyscallBatchFinalPartialFlush(t *testing.T) {
	s := sim.New(1)
	_, _, mkGen, _ := rigOn(t, s)
	cfg := DefaultConfig(1000, 10*time.Millisecond) // ~10 requests
	cfg.Arrival = Uniform
	cfg.SyscallBatch = 64 // never fills during the run
	cfg.Warmup = 0
	g := mkGen(cfg, PingWorkload())
	res := g.Run()
	if res.Issued == 0 {
		t.Fatal("nothing issued")
	}
	if res.Dropped != 0 {
		t.Fatalf("final partial batch never flushed: dropped %d of %d", res.Dropped, res.Issued)
	}
}

func TestSyscallBatchHintsStillExact(t *testing.T) {
	s := sim.New(42)
	_, _, mkGen, _ := rigOn(t, s)
	cfg := DefaultConfig(20000, 100*time.Millisecond)
	cfg.Warmup = 0
	cfg.SyscallBatch = 4
	g := mkGen(cfg, PingWorkload())
	tr := hints.NewTracker(func() qstate.Time { return qstate.Time(s.Now()) })
	g.Hints = tr
	est := hints.NewEstimator(tr)
	est.Sample()
	res := g.Run()
	a := est.Sample()
	if !a.Valid || a.Departures != int64(res.Completed) {
		t.Fatalf("hints: %+v vs completed %d", a, res.Completed)
	}
	meas := float64(res.Latency.Mean())
	if h := float64(a.Latency); h < 0.8*meas || h > 1.25*meas {
		t.Fatalf("hint latency %v vs measured %v: hints must include the userspace wait", a.Latency, res.Latency.Mean())
	}
}

// rigOn builds a client/server rig on a caller-provided simulator so tests
// can share seeds across configurations.
func rigOn(t testing.TB, s *sim.Sim) (*sim.Sim, *Generator, func(cfg Config, mk RequestMaker) *Generator, struct{}) {
	t.Helper()
	cs := tcpsim.NewStack(s, "client")
	ss := tcpsim.NewStack(s, "server")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	ccfg := tcpsim.DefaultConfig()
	ccfg.Nagle = false
	cc, sc := tcpsim.Connect(cs, ss, link, ccfg)
	store := kv.NewStore(func() time.Duration { return s.Now().Duration() })
	kv.NewSimServer(kv.NewEngine(store), sc, kv.DefaultSimServerConfig())
	mkGen := func(cfg Config, mk RequestMaker) *Generator {
		return New(s, cc, cfg, mk)
	}
	return s, nil, mkGen, struct{}{}
}
