package loadgen

import (
	"e2ebatch/internal/resp"
)

// Request kinds reported through Result.ByKind.
const (
	KindSet = iota
	KindGet
	KindPing
)

// SetWorkload reproduces the paper's Figure 4a workload: every request is a
// SET of a valSize-byte value to a keySize-byte key ("a single client that
// sets 16 KiB values to 16 B keys"). Keys rotate over a small set so the
// store stays bounded.
func SetWorkload(keySize, valSize int) RequestMaker {
	keys := makeKeys(keySize, 16)
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte('v')
	}
	return func(i uint64) ([]byte, int) {
		return resp.AppendCommand(nil, []byte("SET"), keys[i%uint64(len(keys))], val), KindSet
	}
}

// MixedWorkload reproduces Figure 4b: setPermille requests per thousand are
// SETs, the rest are GETs of previously set keys (whose responses are the
// full valSize bytes — the "large responses unharmed by batching" that break
// the byte-based estimate). The mix is deterministic so runs are exactly
// reproducible.
func MixedWorkload(keySize, valSize int, setPermille int) RequestMaker {
	if setPermille < 0 || setPermille > 1000 {
		panic("loadgen: setPermille out of range")
	}
	keys := makeKeys(keySize, 16)
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte('v')
	}
	return func(i uint64) ([]byte, int) {
		key := keys[i%uint64(len(keys))]
		// Spread the GETs evenly: request i is a GET when its
		// position within each block of 1000 falls in the GET share.
		if int(i%1000) >= setPermille {
			return resp.AppendCommand(nil, []byte("GET"), key), KindGet
		}
		return resp.AppendCommand(nil, []byte("SET"), key, val), KindSet
	}
}

// PingWorkload issues PINGs — the minimal fixed-size request/response pair,
// useful for microbenchmarks and examples.
func PingWorkload() RequestMaker {
	wire := resp.Command("PING")
	return func(i uint64) ([]byte, int) {
		return wire, KindPing
	}
}

// Keys returns the deterministic key set the workloads rotate over, so
// experiment harnesses can preload the store for GET hits.
func Keys(keySize, n int) [][]byte { return makeKeys(keySize, n) }

func makeKeys(keySize, n int) [][]byte {
	keys := make([][]byte, n)
	for k := range keys {
		key := make([]byte, keySize)
		for i := range key {
			key[i] = byte('a' + k)
		}
		keys[k] = key
	}
	return keys
}
