package loadgen

import (
	"bytes"
	"testing"
	"time"
)

// TestMixedWorkloadPermilleBoundaries pins the degenerate mixes: 1000‰ is
// all SETs, 0‰ all GETs, and the block arithmetic never leaks the other
// kind in.
func TestMixedWorkloadPermilleBoundaries(t *testing.T) {
	allSets := MixedWorkload(16, 64, 1000)
	allGets := MixedWorkload(16, 64, 0)
	for i := uint64(0); i < 2500; i++ {
		if _, kind := allSets(i); kind != KindSet {
			t.Fatalf("setPermille=1000 produced kind %d at %d", kind, i)
		}
		if _, kind := allGets(i); kind != KindGet {
			t.Fatalf("setPermille=0 produced kind %d at %d", kind, i)
		}
	}
	for _, bad := range []int{-1, 1001} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("setPermille=%d accepted", bad)
				}
			}()
			MixedWorkload(16, 64, bad)
		}()
	}
}

// TestSetWorkloadZeroLengthValue: a zero-byte value is a legal RESP bulk
// string ("$0\r\n\r\n") and must survive a full run, not just encoding.
func TestSetWorkloadZeroLengthValue(t *testing.T) {
	mk := SetWorkload(16, 0)
	wire, kind := mk(0)
	if kind != KindSet {
		t.Fatalf("kind = %d", kind)
	}
	if !bytes.Contains(wire, []byte("$0\r\n\r\n")) {
		t.Fatalf("empty value not encoded as $0: %q", wire)
	}
	_, _, mkGen, srv := rig(t, false)
	res := mkGen(DefaultConfig(5000, 50*time.Millisecond), mk).Run()
	if res.Completed == 0 || res.Dropped != 0 {
		t.Fatalf("zero-length values broke the run: %+v", res)
	}
	if srv.Stats().Requests < res.Completed {
		t.Fatalf("server saw %d < completed %d", srv.Stats().Requests, res.Completed)
	}
}

// TestKeyRotationWraps: the key set is 16 wide, so request i and i+16 hit
// the same key (byte-identical wire) while neighbors differ — the wrap that
// keeps the store bounded.
func TestKeyRotationWraps(t *testing.T) {
	mk := SetWorkload(16, 32)
	for i := uint64(0); i < 40; i++ {
		a, _ := mk(i)
		b, _ := mk(i + 16)
		if !bytes.Equal(a, b) {
			t.Fatalf("request %d and %d differ despite key wrap", i, i+16)
		}
		c, _ := mk(i + 1)
		if bytes.Equal(a, c) {
			t.Fatalf("request %d and %d identical: rotation stuck", i, i+1)
		}
	}
	keys := Keys(8, 16)
	if len(keys) != 16 {
		t.Fatalf("Keys returned %d", len(keys))
	}
	for i, k := range keys {
		if len(k) != 8 {
			t.Fatalf("key %d has size %d", i, len(k))
		}
		for j := i + 1; j < len(keys); j++ {
			if bytes.Equal(k, keys[j]) {
				t.Fatalf("keys %d and %d collide", i, j)
			}
		}
	}
}

// TestRateFnModulatesArrivals: a nil RateFn and a constant ×1 RateFn drive
// the identical RNG sequence (so the pre-RateFn goldens cannot drift), a ×2
// shape doubles the issue count, and a burst shape lands near its numeric
// mean.
func TestRateFnModulatesArrivals(t *testing.T) {
	run := func(fn func(time.Duration) float64) *Result {
		_, _, mkGen, _ := rig(t, false)
		cfg := DefaultConfig(20000, 100*time.Millisecond)
		cfg.Arrival = Uniform
		cfg.RateFn = fn
		return mkGen(cfg, PingWorkload()).Run()
	}
	base := run(nil)
	one := run(func(time.Duration) float64 { return 1 })
	if base.Issued != one.Issued {
		t.Fatalf("constant x1 RateFn changed issue count: %d vs %d", base.Issued, one.Issued)
	}
	double := run(func(time.Duration) float64 { return 2 })
	if double.Issued < 2*base.Issued-40 || double.Issued > 2*base.Issued+40 {
		t.Fatalf("x2 RateFn issued %d, want ~%d", double.Issued, 2*base.Issued)
	}
	shape := BurstShape(20*time.Millisecond, 5*time.Millisecond, 3, 0.35)
	burst := run(shape)
	want := float64(base.Issued) * MeanShape(shape, 100*time.Millisecond)
	if float64(burst.Issued) < 0.85*want || float64(burst.Issued) > 1.15*want {
		t.Fatalf("burst shape issued %d, want ~%.0f", burst.Issued, want)
	}
	// The floor clamps a pathological shape instead of freezing the run.
	frozen := run(func(time.Duration) float64 { return 0 })
	if frozen.Issued > 25 {
		t.Fatalf("zero-rate shape still issued %d", frozen.Issued)
	}
}
