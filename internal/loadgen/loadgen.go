// Package loadgen is the Lancet-analogue load generator (§4 Methodology):
// an open-loop client that issues RESP requests at a configured rate with
// Poisson or uniform arrivals, pipelines them over one simulated connection,
// and records per-request latency.
//
// Latency is measured from the request's *scheduled* arrival time to the
// moment the client application reads its response — the standard
// open-loop discipline that avoids coordinated omission, mirroring Lancet's
// self-correcting measurement.
package loadgen

import (
	"fmt"
	"time"

	"e2ebatch/internal/cpumodel"
	"e2ebatch/internal/hints"
	"e2ebatch/internal/metrics"
	"e2ebatch/internal/resp"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// Arrival selects the inter-arrival process.
type Arrival int

const (
	// Uniform spaces requests exactly 1/rate apart.
	Uniform Arrival = iota
	// Poisson draws exponential inter-arrival gaps (open-loop memoryless
	// clients, Lancet's default).
	Poisson
)

// Config parameterizes a load run.
type Config struct {
	// Rate is the offered load in requests per second (open loop).
	Rate float64
	// Concurrency, when positive, switches to a closed loop: that many
	// requests are kept outstanding at all times and Rate is ignored —
	// the redis-benchmark discipline. Note that with Concurrency 1 the
	// sender never has data in flight when it sends, so Nagle-style
	// holds never trigger: closed loops mask the batching tradeoff the
	// open-loop experiments expose.
	Concurrency int
	// Arrival is the inter-arrival process.
	Arrival Arrival
	// RateFn, when non-nil, modulates the open-loop offered rate over
	// time: while scheduling the next arrival the instantaneous rate is
	// Rate·RateFn(elapsed), with elapsed the virtual time since the run
	// started. This is how the workload zoo expresses bursty and diurnal
	// arrival processes while staying deterministic — gaps are still drawn
	// from the simulator's seeded RNG, only their mean moves. Multipliers
	// are clamped below at 1e-3 so a mis-specified shape cannot stall the
	// arrival chain. Ignored in closed loops (Concurrency > 0).
	RateFn func(elapsed time.Duration) float64
	// Warmup discards samples whose requests were issued before this
	// offset; Duration is how long requests are issued in total.
	Warmup   time.Duration
	Duration time.Duration
	// Drain bounds how long to wait for outstanding responses after the
	// last request (default 10× warmup-to-duration gap is overkill; zero
	// means 100 ms).
	Drain time.Duration

	// SendCosts prices issuing one request on the client app CPU
	// (encode + send syscall).
	SendCosts cpumodel.Costs
	// ReadCosts.PerBatch prices one read wakeup (β).
	ReadCosts cpumodel.Costs
	// PerResponse is the paper's client-side processing cost c, charged
	// per response; PerRespByteNS adds a byte-proportional component.
	PerResponse   time.Duration
	PerRespByteNS float64

	// SyscallBatch > 1 makes the client aggregate that many requests per
	// send(2) — the syscall batching that breaks the send-unit
	// approximation and motivates the hint API (§3.3). Requests wait in
	// userspace until their batch fills.
	SyscallBatch int

	// WindowEvery, when positive, additionally buckets samples into
	// consecutive time windows of this length (by completion time,
	// including warmup), exposing latency-over-time series in
	// Result.Windows — used to visualize policy convergence.
	WindowEvery time.Duration

	// OnComplete, when non-nil, observes every completed request as it
	// finishes: reqID is the 0-based completion index (equal to the issue
	// index — the pipeline is FIFO), scheduledNs/completedNs the virtual
	// timestamps, unfiltered by warmup. This is the per-request export
	// seam the span-tracing plane hangs off without this package importing
	// it; a nil hook costs nothing, so instrumented and uninstrumented
	// runs execute identical event sequences.
	OnComplete func(reqID uint64, scheduledNs, completedNs int64)
}

// DefaultConfig returns a modest client profile.
func DefaultConfig(rate float64, duration time.Duration) Config {
	return Config{
		Rate:        rate,
		Arrival:     Poisson,
		Warmup:      duration / 5,
		Duration:    duration,
		SendCosts:   cpumodel.Costs{PerItem: 2 * time.Microsecond, PerByteNS: 0.2},
		ReadCosts:   cpumodel.Costs{PerBatch: 2 * time.Microsecond},
		PerResponse: 3 * time.Microsecond,
	}
}

// RequestMaker produces the i-th request's wire bytes plus an integer kind
// used to separate latency distributions (e.g. SET vs GET in Figure 4b).
type RequestMaker func(i uint64) (wire []byte, kind int)

// Result summarizes a run.
type Result struct {
	Issued    uint64
	Completed uint64
	Dropped   uint64 // issued but never answered before the drain deadline

	// Latency aggregates post-warmup samples; ByKind splits them by the
	// RequestMaker's kind.
	Latency metrics.Histogram
	ByKind  map[int]*metrics.Histogram

	// OfferedRate is the configured rate; AchievedRate counts post-warmup
	// completions against the measurement window.
	OfferedRate  float64
	AchievedRate float64

	// Windows is the latency-over-time series (Config.WindowEvery > 0).
	Windows []Window
}

// Window is one time bucket of the latency series.
type Window struct {
	Start time.Duration // window start, relative to the run start
	Count uint64
	Sum   time.Duration
}

// Mean returns the window's average latency (0 when empty).
func (w Window) Mean() time.Duration {
	if w.Count == 0 {
		return 0
	}
	return w.Sum / time.Duration(w.Count)
}

// MeanLatency is shorthand for Result.Latency.Mean().
func (r *Result) MeanLatency() time.Duration { return r.Latency.Mean() }

func (r *Result) String() string {
	return fmt.Sprintf("offered=%.0f/s achieved=%.0f/s mean=%v p99=%v n=%d",
		r.OfferedRate, r.AchievedRate, r.Latency.Mean(), r.Latency.Quantile(0.99), r.Latency.Count())
}

type pending struct {
	scheduledAt sim.Time
	kind        int
}

// Generator drives one connection. Construct with New, then Run.
type Generator struct {
	sim  *sim.Sim
	conn *tcpsim.Conn
	cfg  Config
	mk   RequestMaker

	// Hints, when non-nil, receives Create/Complete calls per request —
	// the cooperative-application path of §3.3.
	Hints *hints.Tracker

	parser   resp.Parser
	inflight []pending
	busy     bool
	stopped  bool
	start    sim.Time
	issueEnd sim.Time

	sendBuf      []byte // userspace aggregation buffer (SyscallBatch > 1)
	sendBuffered int

	res Result
}

// New returns a generator issuing requests built by mk over conn.
func New(s *sim.Sim, conn *tcpsim.Conn, cfg Config, mk RequestMaker) *Generator {
	if (cfg.Rate <= 0 && cfg.Concurrency <= 0) || cfg.Duration <= 0 {
		panic("loadgen: need a positive rate or concurrency, and a positive duration")
	}
	if mk == nil {
		panic("loadgen: nil RequestMaker")
	}
	g := &Generator{sim: s, conn: conn, cfg: cfg, mk: mk}
	g.res.OfferedRate = cfg.Rate
	g.res.ByKind = make(map[int]*metrics.Histogram)
	conn.OnReadable(g.wake)
	return g
}

// Run schedules the arrival process, runs the simulation through issue and
// drain, and returns the results. It must be called once. To run several
// generators on one simulator (multiple connections), use Start, drive the
// simulator yourself, and call Finalize on each.
func (g *Generator) Run() *Result {
	end := g.Start()
	drain := g.cfg.Drain
	if drain <= 0 {
		drain = 100 * time.Millisecond
	}
	g.sim.RunUntil(end)
	g.flushSends() // release any partial userspace batch
	deadline := g.sim.Now().Add(drain)
	for g.sim.Now() < deadline && len(g.inflight) > 0 {
		if !g.sim.Step() {
			break
		}
	}
	return g.Finalize()
}

// Start schedules the arrival process and returns the virtual time at which
// issuing stops. The caller must then run the simulator at least to that
// time (plus drain), call FlushSends once issuing is over, and Finalize.
func (g *Generator) Start() sim.Time {
	start := g.sim.Now()
	g.start = start
	end := start.Add(g.cfg.Duration)
	g.issueEnd = end

	if g.cfg.Concurrency > 0 {
		// Closed loop: prime the window; replacements are issued as
		// responses complete (see wake).
		for i := 0; i < g.cfg.Concurrency; i++ {
			g.issueOne(start)
		}
		return end
	}

	gap := func() time.Duration {
		rate := g.cfg.Rate
		if g.cfg.RateFn != nil {
			f := g.cfg.RateFn(g.sim.Now().Sub(start))
			if f < 1e-3 {
				f = 1e-3
			}
			rate *= f
		}
		mean := float64(time.Second) / rate
		if g.cfg.Arrival == Poisson {
			return time.Duration(g.sim.Rand().ExpFloat64() * mean)
		}
		return time.Duration(mean)
	}

	var issue func()
	next := start.Add(gap())
	issue = func() {
		g.issueOne(g.sim.Now())
		next = next.Add(gap())
		if next < g.sim.Now() {
			// The gap rounded to < 1ns event resolution; keep the
			// offered process moving.
			next = g.sim.Now() + 1
		}
		if next <= end {
			g.sim.At(next, issue)
		}
	}
	if next <= end {
		g.sim.At(next, issue)
	}
	return end
}

// FlushSends releases any partial userspace syscall batch; call it after
// issuing has ended when driving the simulator manually.
func (g *Generator) FlushSends() { g.flushSends() }

// Outstanding returns requests issued but not yet answered.
func (g *Generator) Outstanding() int { return len(g.inflight) }

// Finalize stops measurement and computes the result. Responses arriving
// afterwards are ignored.
func (g *Generator) Finalize() *Result {
	g.stopped = true
	g.res.Dropped = uint64(len(g.inflight))
	meas := g.cfg.Duration - g.cfg.Warmup
	if meas > 0 {
		g.res.AchievedRate = float64(g.res.Latency.Count()) / meas.Seconds()
	}
	return &g.res
}

// issueOne charges the client send cost and writes request i to the socket.
// The latency clock starts at the scheduled arrival (now). With syscall
// batching, the request instead waits in a userspace buffer until its batch
// fills.
func (g *Generator) issueOne(scheduled sim.Time) {
	i := g.res.Issued
	g.res.Issued++
	wire, kind := g.mk(i)
	g.inflight = append(g.inflight, pending{scheduledAt: scheduled, kind: kind})
	if g.Hints != nil {
		g.Hints.Create(1)
	}
	if g.cfg.SyscallBatch > 1 {
		g.sendBuf = append(g.sendBuf, wire...)
		g.sendBuffered++
		if g.sendBuffered >= g.cfg.SyscallBatch {
			g.flushSends()
		}
		return
	}
	g.conn.Stack().AppCPU.Exec(g.cfg.SendCosts.Item(len(wire)), func() {
		g.conn.Send(wire)
	})
}

// flushSends issues the buffered requests as one send(2).
func (g *Generator) flushSends() {
	if g.sendBuffered == 0 {
		return
	}
	wire := g.sendBuf
	n := g.sendBuffered
	g.sendBuf = nil
	g.sendBuffered = 0
	g.conn.Stack().AppCPU.Exec(g.cfg.SendCosts.Batch(n, len(wire)), func() {
		g.conn.Send(wire)
	})
}

// wake is the client's readable event: charge β, read, parse, complete
// responses FIFO, then charge per-response processing (c).
func (g *Generator) wake() {
	if g.busy || g.stopped {
		return
	}
	g.busy = true
	g.conn.Stack().AppCPU.Exec(g.cfg.ReadCosts.PerBatch, func() {
		data := g.conn.Read(0)
		now := g.sim.Now()
		g.parser.Feed(data)
		var procCost time.Duration
		completedBytes := 0
		for {
			v, ok, err := g.parser.Next()
			if err != nil {
				panic(fmt.Sprintf("loadgen: corrupt response stream: %v", err))
			}
			if !ok {
				break
			}
			if len(g.inflight) == 0 {
				panic("loadgen: response without a pending request")
			}
			p := g.inflight[0]
			g.inflight = g.inflight[1:]
			g.res.Completed++
			if g.Hints != nil {
				g.Hints.Complete(1)
			}
			if g.cfg.OnComplete != nil {
				g.cfg.OnComplete(g.res.Completed-1, int64(p.scheduledAt), int64(now))
			}
			lat := now.Sub(p.scheduledAt)
			if g.cfg.WindowEvery > 0 {
				idx := int(now.Sub(g.start) / g.cfg.WindowEvery)
				for len(g.res.Windows) <= idx {
					g.res.Windows = append(g.res.Windows, Window{
						Start: time.Duration(len(g.res.Windows)) * g.cfg.WindowEvery,
					})
				}
				g.res.Windows[idx].Count++
				g.res.Windows[idx].Sum += lat
			}
			if p.scheduledAt.Sub(g.start) >= g.cfg.Warmup && !g.stopped {
				g.res.Latency.Record(lat)
				h := g.res.ByKind[p.kind]
				if h == nil {
					h = &metrics.Histogram{}
					g.res.ByKind[p.kind] = h
				}
				h.Record(lat)
			}
			respBytes := len(v.Str)
			completedBytes += respBytes
			procCost += g.cfg.PerResponse + time.Duration(float64(respBytes)*g.cfg.PerRespByteNS)

			// Closed loop: replace the completed request while the
			// issuing window is open.
			if g.cfg.Concurrency > 0 && !g.stopped && now < g.issueEnd {
				g.issueOne(now)
			}
		}
		_ = completedBytes
		g.conn.Stack().AppCPU.Exec(procCost, func() {
			g.busy = false
			if g.conn.Readable() > 0 {
				g.wake()
			}
		})
	})
}
