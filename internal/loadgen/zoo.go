package loadgen

import (
	"math"
	"time"

	"e2ebatch/internal/resp"
)

// The workload zoo is the model-fidelity harness's test corpus: a library of
// deterministic, replayable traffic shapes that stress the end-to-end
// estimator along different axes — value-size dispersion, arrival burstiness,
// response fan-in, userspace pipelining, sender corking. Every member is a
// pure function of (seed, request index): per-request randomness comes from a
// splitmix64 hash of the seed and index, never from shared RNG state, so
// replaying a workload twice with the same seed yields a byte-identical
// request stream (the property cmd/fidelity's determinism tests pin via the
// tcpsim stream digests).

// ZooWorkload is one member of the zoo: a request-stream factory plus the
// run-shaping knobs the fidelity harness forwards into a run spec, plus the
// analytic profile (Sizes) the closed-form rival predictor consumes.
type ZooWorkload struct {
	// Name identifies the workload in reports; Info is the one-line
	// description printed alongside.
	Name, Info string

	// Rate is the offered load in requests per second (mean rate when
	// RateShape is set).
	Rate float64
	// RateShape, when non-nil, is the Config.RateFn multiplier giving the
	// workload a time-varying arrival process. It must be a pure function.
	RateShape func(elapsed time.Duration) float64

	// SyscallBatch > 1 makes the client aggregate requests per send(2);
	// WithHints attaches the §3.3 create/complete tracker.
	SyscallBatch int
	WithHints    bool
	// PreloadKeys populates the store before the run so GET-family
	// requests hit at full value size.
	PreloadKeys bool
	// BatchOn runs the workload under static sender batching (Nagle +
	// TSO-sized cork) instead of the Redis-style TCP_NODELAY default.
	BatchOn bool

	// NewMaker builds the request stream. Each call returns a fresh,
	// stateless maker; streams from the same seed are identical.
	NewMaker func(seed int64) RequestMaker

	// Sizes enumerates the first n requests and returns each request's
	// wire size and its expected RESP-encoded response size, in bytes —
	// the workload's size profile, from which the analytic predictor
	// derives its service-time moments without touching the simulator.
	Sizes func(seed int64, n int) (req, resp []int)
}

// Zoo returns the workload zoo at the given key/value calibration (the
// paper's 16 B keys and 16 KiB values). Order is fixed; reports iterate it
// verbatim.
func Zoo(keySize, valSize int) []ZooWorkload {
	return []ZooWorkload{
		zooSet(keySize, valSize, false),
		zooSet(keySize, valSize, true),
		zooMix(keySize, valSize),
		zooHeavyTail(keySize),
		zooBursty(keySize),
		zooDiurnal(keySize),
		zooFanout(keySize, valSize),
		zooPipelined(keySize),
	}
}

// ZooByName returns the named zoo member.
func ZooByName(keySize, valSize int, name string) (ZooWorkload, bool) {
	for _, w := range Zoo(keySize, valSize) {
		if w.Name == name {
			return w, true
		}
	}
	return ZooWorkload{}, false
}

func zooSet(keySize, valSize int, corked bool) ZooWorkload {
	name, info := "set-16k", "paper fig4a: homogeneous 16 KiB SETs, Poisson"
	if corked {
		name, info = "set-16k-corked", "set-16k under static sender batching (TSO cork)"
	}
	return ZooWorkload{
		Name: name, Info: info,
		Rate:    30000,
		BatchOn: corked,
		NewMaker: func(seed int64) RequestMaker {
			return SetWorkload(keySize, valSize)
		},
		Sizes: func(seed int64, n int) ([]int, []int) {
			return sizesOf(SetWorkload(keySize, valSize), n, func(i uint64, kind int) int {
				return respSimpleLen(2) // +OK
			})
		},
	}
}

func zooMix(keySize, valSize int) ZooWorkload {
	const permille = 950
	mk := func(int64) RequestMaker { return MixedWorkload(keySize, valSize, permille) }
	return ZooWorkload{
		Name: "mix-95-5", Info: "paper fig4b: 95% SET / 5% GET, 16 KiB both ways",
		Rate:        30000,
		PreloadKeys: true,
		NewMaker:    mk,
		Sizes: func(seed int64, n int) ([]int, []int) {
			return sizesOf(mk(seed), n, func(i uint64, kind int) int {
				if kind == KindGet {
					return respBulkLen(valSize)
				}
				return respSimpleLen(2)
			})
		},
	}
}

// Heavy-tail parameters: a bounded Pareto on the SET value size. The tail
// index sits below 1.5 so the size distribution's second moment is dominated
// by the bound — the dispersion that makes mean-based byte estimates shaky.
const (
	heavyTailAlpha = 1.2
	heavyTailMin   = 256
	heavyTailMax   = 128 << 10
)

func zooHeavyTail(keySize int) ZooWorkload {
	return ZooWorkload{
		Name: "heavy-tail", Info: "bounded-Pareto value sizes (α=1.2, 256 B…128 KiB)",
		Rate: 50000,
		NewMaker: func(seed int64) RequestMaker {
			return HeavyTailWorkload(keySize, seed, heavyTailAlpha, heavyTailMin, heavyTailMax)
		},
		Sizes: func(seed int64, n int) ([]int, []int) {
			return sizesOf(HeavyTailWorkload(keySize, seed, heavyTailAlpha, heavyTailMin, heavyTailMax), n,
				func(i uint64, kind int) int { return respSimpleLen(2) })
		},
	}
}

func zooBursty(keySize int) ZooWorkload {
	const burstVal = 4 << 10
	return ZooWorkload{
		Name: "bursty", Info: "on/off arrivals: 3.0x for 5 ms, 0.35x for 15 ms, 4 KiB SETs",
		Rate:      25000,
		RateShape: BurstShape(20*time.Millisecond, 5*time.Millisecond, 3.0, 0.35),
		NewMaker: func(seed int64) RequestMaker {
			return SetWorkload(keySize, burstVal)
		},
		Sizes: func(seed int64, n int) ([]int, []int) {
			return sizesOf(SetWorkload(keySize, burstVal), n,
				func(i uint64, kind int) int { return respSimpleLen(2) })
		},
	}
}

func zooDiurnal(keySize int) ZooWorkload {
	const dayVal = 2 << 10
	return ZooWorkload{
		Name: "diurnal", Info: "sinusoidal arrivals (±60% over a 60 ms day), 2 KiB SETs",
		Rate:      30000,
		RateShape: DiurnalShape(60*time.Millisecond, 0.6),
		NewMaker: func(seed int64) RequestMaker {
			return SetWorkload(keySize, dayVal)
		},
		Sizes: func(seed int64, n int) ([]int, []int) {
			return sizesOf(SetWorkload(keySize, dayVal), n,
				func(i uint64, kind int) int { return respSimpleLen(2) })
		},
	}
}

// Fan-out chain parameters: every chainLen-th request is the root "gather"
// MGET over fanWidth preloaded keys (a fanWidth·16 KiB response burst); the
// rest are small scatter SETs confined to the non-preloaded key range so the
// gather keys keep their full-size values.
const (
	fanoutChainLen = 8
	fanoutWidth    = 4
	fanoutChildVal = 64
)

func zooFanout(keySize, valSize int) ZooWorkload {
	mk := func(int64) RequestMaker { return FanoutWorkload(keySize, fanoutChainLen, fanoutWidth, fanoutChildVal) }
	return ZooWorkload{
		Name: "fanout", Info: "RPC chain: 1 gather MGET(4x16 KiB) per 7 small scatter SETs",
		Rate:        20000,
		PreloadKeys: true,
		NewMaker:    mk,
		Sizes: func(seed int64, n int) ([]int, []int) {
			return sizesOf(mk(seed), n, func(i uint64, kind int) int {
				if kind == KindGet {
					return respArrayLen(fanoutWidth, valSize)
				}
				return respSimpleLen(2)
			})
		},
	}
}

func zooPipelined(keySize int) ZooWorkload {
	const pipeVal = 4 << 10
	return ZooWorkload{
		Name: "pipelined-hints", Info: "4-deep userspace pipelining + §3.3 hints app, 4 KiB SETs",
		Rate:         25000,
		SyscallBatch: 4,
		WithHints:    true,
		NewMaker: func(seed int64) RequestMaker {
			return SetWorkload(keySize, pipeVal)
		},
		Sizes: func(seed int64, n int) ([]int, []int) {
			return sizesOf(SetWorkload(keySize, pipeVal), n,
				func(i uint64, kind int) int { return respSimpleLen(2) })
		},
	}
}

// BurstShape returns an on/off rate multiplier: within each period, the
// first burstLen runs at the on multiplier and the remainder at the off
// multiplier. Both multipliers must be positive.
func BurstShape(period, burstLen time.Duration, on, off float64) func(time.Duration) float64 {
	if period <= 0 || burstLen <= 0 || burstLen > period || on <= 0 || off <= 0 {
		panic("loadgen: invalid burst shape")
	}
	return func(elapsed time.Duration) float64 {
		if elapsed%period < burstLen {
			return on
		}
		return off
	}
}

// DiurnalShape returns a sinusoidal rate multiplier 1 + amp·sin(2πt/period)
// — a whole simulated day compressed into one period. amp must lie in
// (0, 1) so the rate stays positive.
func DiurnalShape(period time.Duration, amp float64) func(time.Duration) float64 {
	if period <= 0 || amp <= 0 || amp >= 1 {
		panic("loadgen: invalid diurnal shape")
	}
	return func(elapsed time.Duration) float64 {
		return 1 + amp*math.Sin(2*math.Pi*float64(elapsed%period)/float64(period))
	}
}

// MeanShape numerically averages a rate shape over a run duration (1000
// evaluation points) — how the analytic predictor recovers the effective
// mean arrival rate of a modulated workload. Returns 1 for a nil shape.
func MeanShape(shape func(time.Duration) float64, dur time.Duration) float64 {
	if shape == nil || dur <= 0 {
		return 1
	}
	const steps = 1000
	var sum float64
	for i := 0; i < steps; i++ {
		t := time.Duration(float64(dur) * (float64(i) + 0.5) / steps)
		sum += shape(t)
	}
	return sum / steps
}

// HeavyTailWorkload issues SETs whose value sizes follow a bounded Pareto
// distribution with tail index alpha on [minVal, maxVal]. Sizes are a pure
// function of (seed, request index) via splitmix64, so the stream replays
// byte-identically.
func HeavyTailWorkload(keySize int, seed int64, alpha float64, minVal, maxVal int) RequestMaker {
	if alpha <= 0 || minVal <= 0 || maxVal < minVal {
		panic("loadgen: invalid heavy-tail parameters")
	}
	keys := makeKeys(keySize, 16)
	return func(i uint64) ([]byte, int) {
		n := paretoSize(seed, i, alpha, minVal, maxVal)
		val := make([]byte, n)
		for j := range val {
			val[j] = byte('v')
		}
		return resp.AppendCommand(nil, []byte("SET"), keys[i%uint64(len(keys))], val), KindSet
	}
}

// FanoutWorkload models a fan-out RPC chain over one connection: every
// chainLen-th request is the root — an MGET gathering fanWidth preloaded
// keys, whose fan-in response dwarfs the requests around it — and the
// remaining requests are small scatter SETs. Scatter writes rotate over the
// key range above fanWidth so the gather keys keep their preloaded values.
func FanoutWorkload(keySize, chainLen, fanWidth, childVal int) RequestMaker {
	if chainLen < 2 || fanWidth < 1 || fanWidth >= 16 || childVal < 0 {
		panic("loadgen: invalid fanout parameters")
	}
	keys := makeKeys(keySize, 16)
	val := make([]byte, childVal)
	for i := range val {
		val[i] = byte('v')
	}
	gather := make([][]byte, 0, 1+fanWidth)
	gather = append(gather, []byte("MGET"))
	gather = append(gather, keys[:fanWidth]...)
	rootWire := resp.AppendCommand(nil, gather...)
	scatterKeys := keys[fanWidth:]
	return func(i uint64) ([]byte, int) {
		if i%uint64(chainLen) == 0 {
			return rootWire, KindGet
		}
		key := scatterKeys[i%uint64(len(scatterKeys))]
		return resp.AppendCommand(nil, []byte("SET"), key, val), KindSet
	}
}

// paretoSize draws the i-th bounded-Pareto size by inverse-CDF over a
// splitmix64 uniform variate.
func paretoSize(seed int64, i uint64, alpha float64, minVal, maxVal int) int {
	u := unitFloat(seed, i)
	l, h := float64(minVal), float64(maxVal)
	x := l / math.Pow(1-u*(1-math.Pow(l/h, alpha)), 1/alpha)
	n := int(x)
	if n < minVal {
		n = minVal
	}
	if n > maxVal {
		n = maxVal
	}
	return n
}

// splitmix64 is the per-request PRF behind the randomized makers: cheap,
// stateless, well-mixed — determinism by construction rather than by
// careful RNG threading.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps (seed, i) to a uniform variate in (0, 1), never exactly 0
// or 1 so inverse-CDF transforms stay finite.
func unitFloat(seed int64, i uint64) float64 {
	h := splitmix64(splitmix64(uint64(seed)) ^ i)
	return (float64(h>>11) + 0.5) / (1 << 53)
}

// sizesOf enumerates the first n requests of a maker, returning each
// request's wire size and its expected response size per respBytes.
func sizesOf(mk RequestMaker, n int, respBytes func(i uint64, kind int) int) (req, resp []int) {
	req = make([]int, n)
	resp = make([]int, n)
	for i := 0; i < n; i++ {
		wire, kind := mk(uint64(i))
		req[i] = len(wire)
		resp[i] = respBytes(uint64(i), kind)
	}
	return req, resp
}

// respSimpleLen is the RESP wire size of a simple-string reply of n
// characters ("+OK\r\n" for n=2).
func respSimpleLen(n int) int { return n + 3 }

// respBulkLen is the RESP wire size of a bulk-string reply of n bytes:
// "$<len>\r\n<data>\r\n".
func respBulkLen(n int) int {
	return 1 + digits(n) + 2 + n + 2
}

// respArrayLen is the RESP wire size of an array of width bulk replies of
// elem bytes each — the fan-in MGET response.
func respArrayLen(width, elem int) int {
	return 1 + digits(width) + 2 + width*respBulkLen(elem)
}

func digits(n int) int {
	if n < 0 {
		panic("loadgen: negative length")
	}
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}
