package loadgen

import (
	"bytes"
	"math"
	"testing"
	"time"
)

func TestZooMembership(t *testing.T) {
	zoo := Zoo(16, 16<<10)
	if len(zoo) < 6 {
		t.Fatalf("zoo has %d members, want >= 6", len(zoo))
	}
	seen := map[string]bool{}
	for _, w := range zoo {
		if w.Name == "" || w.Info == "" {
			t.Fatalf("unnamed workload: %+v", w)
		}
		if seen[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
		if w.Rate <= 0 || w.NewMaker == nil || w.Sizes == nil {
			t.Fatalf("%s: incomplete definition", w.Name)
		}
	}
	for _, name := range []string{"set-16k", "set-16k-corked", "heavy-tail", "bursty", "diurnal", "fanout"} {
		if _, ok := ZooByName(16, 16<<10, name); !ok {
			t.Errorf("ZooByName(%q) missing", name)
		}
	}
	if _, ok := ZooByName(16, 16<<10, "no-such"); ok {
		t.Error("ZooByName invented a workload")
	}
}

// TestZooStreamsReplayable: every maker is a pure function of (seed, index)
// — same seed, same index, same bytes — and Sizes agrees with the bytes the
// maker actually produces.
func TestZooStreamsReplayable(t *testing.T) {
	const n = 500
	for _, w := range Zoo(16, 16<<10) {
		a, b := w.NewMaker(7), w.NewMaker(7)
		req, resp := w.Sizes(7, n)
		if len(req) != n || len(resp) != n {
			t.Fatalf("%s: Sizes returned %d/%d entries", w.Name, len(req), len(resp))
		}
		for i := uint64(0); i < n; i++ {
			wa, ka := a(i)
			wb, kb := b(i)
			if !bytes.Equal(wa, wb) || ka != kb {
				t.Fatalf("%s: request %d differs across replays", w.Name, i)
			}
			if len(wa) != req[i] {
				t.Fatalf("%s: Sizes says request %d is %d bytes, maker produced %d",
					w.Name, i, req[i], len(wa))
			}
			if resp[i] <= 0 {
				t.Fatalf("%s: nonpositive response size at %d", w.Name, i)
			}
		}
	}
}

func TestHeavyTailSeedChangesSizes(t *testing.T) {
	w, _ := ZooByName(16, 16<<10, "heavy-tail")
	r1, _ := w.Sizes(1, 200)
	r2, _ := w.Sizes(2, 200)
	diff := 0
	for i := range r1 {
		if r1[i] != r2[i] {
			diff++
		}
	}
	if diff < 100 {
		t.Fatalf("only %d/200 sizes changed across seeds", diff)
	}
}

func TestParetoSizeBounds(t *testing.T) {
	minN, maxN := heavyTailMax, heavyTailMin
	for i := uint64(0); i < 20000; i++ {
		n := paretoSize(3, i, heavyTailAlpha, heavyTailMin, heavyTailMax)
		if n < heavyTailMin || n > heavyTailMax {
			t.Fatalf("size %d outside [%d, %d]", n, heavyTailMin, heavyTailMax)
		}
		if n < minN {
			minN = n
		}
		if n > maxN {
			maxN = n
		}
	}
	// A heavy tail actually uses its range: the min hugs the floor, the
	// max gets within an order of magnitude of the cap.
	if minN > 2*heavyTailMin || maxN < heavyTailMax/10 {
		t.Fatalf("degenerate Pareto: observed [%d, %d]", minN, maxN)
	}
}

func TestUnitFloatInOpenInterval(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		u := unitFloat(11, i)
		if u <= 0 || u >= 1 {
			t.Fatalf("unitFloat(11, %d) = %v", i, u)
		}
	}
}

func TestBurstShape(t *testing.T) {
	sh := BurstShape(20*time.Millisecond, 5*time.Millisecond, 3, 0.35)
	if sh(0) != 3 || sh(4*time.Millisecond) != 3 {
		t.Fatal("burst window not on")
	}
	if sh(5*time.Millisecond) != 0.35 || sh(19*time.Millisecond) != 0.35 {
		t.Fatal("off window not off")
	}
	if sh(20*time.Millisecond) != 3 {
		t.Fatal("shape not periodic")
	}
	for _, f := range []func(){
		func() { BurstShape(0, time.Millisecond, 2, 0.5) },
		func() { BurstShape(time.Millisecond, 2*time.Millisecond, 2, 0.5) },
		func() { BurstShape(time.Millisecond, time.Millisecond, 0, 0.5) },
		func() { BurstShape(time.Millisecond, time.Millisecond, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid burst shape accepted")
				}
			}()
			f()
		}()
	}
}

func TestDiurnalShape(t *testing.T) {
	sh := DiurnalShape(60*time.Millisecond, 0.6)
	if got := sh(15 * time.Millisecond); math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("peak = %v, want 1.6", got)
	}
	if got := sh(45 * time.Millisecond); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("trough = %v, want 0.4", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("amp >= 1 accepted")
		}
	}()
	DiurnalShape(time.Millisecond, 1)
}

func TestMeanShape(t *testing.T) {
	if MeanShape(nil, time.Second) != 1 {
		t.Fatal("nil shape mean != 1")
	}
	// Sinusoid over whole periods averages to 1.
	m := MeanShape(DiurnalShape(10*time.Millisecond, 0.6), 100*time.Millisecond)
	if math.Abs(m-1) > 0.01 {
		t.Fatalf("diurnal mean = %v, want ~1", m)
	}
	// Burst: 5ms at 3x + 15ms at 0.35x over a 20ms period.
	want := (5*3 + 15*0.35) / 20
	m = MeanShape(BurstShape(20*time.Millisecond, 5*time.Millisecond, 3, 0.35), 200*time.Millisecond)
	if math.Abs(m-want) > 0.01 {
		t.Fatalf("burst mean = %v, want %v", m, want)
	}
}

func TestFanoutWorkloadShape(t *testing.T) {
	mk := FanoutWorkload(16, fanoutChainLen, fanoutWidth, fanoutChildVal)
	root, kind := mk(0)
	if kind != KindGet {
		t.Fatal("chain root is not the gather")
	}
	scatter, kind := mk(1)
	if kind != KindSet {
		t.Fatal("chain body is not scatter SETs")
	}
	if len(root) >= len(scatter)+200 {
		t.Fatalf("gather request unexpectedly large: %d vs %d", len(root), len(scatter))
	}
	// Every chainLen-th request is the root again, byte-identical.
	root2, _ := mk(fanoutChainLen)
	if !bytes.Equal(root, root2) {
		t.Fatal("gather request not stable across chains")
	}
	// Scatter SETs avoid the gather key range.
	gatherKeys := makeKeys(16, 16)[:fanoutWidth]
	for i := uint64(1); i < 64; i++ {
		wire, kind := mk(i)
		if kind != KindSet && i%fanoutChainLen != 0 {
			t.Fatalf("request %d: unexpected kind %d", i, kind)
		}
		if kind != KindSet {
			continue
		}
		for _, k := range gatherKeys {
			if bytes.Contains(wire, k) {
				t.Fatalf("scatter SET %d touches gather key %q", i, k)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid fanout accepted")
		}
	}()
	FanoutWorkload(16, 1, 4, 64)
}

func TestRespWireLens(t *testing.T) {
	if got := respSimpleLen(2); got != len("+OK\r\n") {
		t.Fatalf("simple = %d", got)
	}
	if got := respBulkLen(5); got != len("$5\r\nhello\r\n") {
		t.Fatalf("bulk = %d", got)
	}
	if got := respBulkLen(0); got != len("$0\r\n\r\n") {
		t.Fatalf("empty bulk = %d", got)
	}
	want := len("*2\r\n") + 2*respBulkLen(3)
	if got := respArrayLen(2, 3); got != want {
		t.Fatalf("array = %d, want %d", got, want)
	}
	if digits(0) != 1 || digits(9) != 1 || digits(10) != 2 || digits(16384) != 5 {
		t.Fatal("digits wrong")
	}
}
