package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mutexPackages are the packages whose internal mutexes sit on the
// measurement hot path: every Track/Update/Observe serializes on them, so a
// blocking call made while one is held stalls every connection's
// instrumentation at once — precisely the estimator-perturbs-the-system
// effect the paper's methodology is built to avoid.
var mutexPackages = []string{qstatePath, corePath, policyPath}

// MutexHold flags blocking operations — socket/file I/O, time.Sleep,
// fmt/log printing, channel sends and receives — executed while a
// sync.Mutex in qstate, core or policy is held. The held region is tracked
// lexically per block: from x.mu.Lock() to the matching x.mu.Unlock(), or to
// the end of the function when the unlock is deferred. Function literals are
// not entered (a closure built under the lock runs later, off the critical
// section) except when invoked immediately.
var MutexHold = &Analyzer{
	Name: "mutexhold",
	Doc:  "forbid blocking calls while a qstate/core/policy mutex is held",
	Run:  runMutexHold,
}

func runMutexHold(p *Pass) {
	if !pathIsOneOf(p.Pkg.Path(), mutexPackages...) {
		return
	}
	for _, fd := range funcDecls(p) {
		checkMutexBlock(p, fd.Body.List, map[string]bool{})
	}
}

// checkMutexBlock scans one statement list, threading the set of held mutex
// keys through it; nested control-flow bodies are scanned with a copy, so a
// Lock inside an if-branch does not leak into the statements after it.
func checkMutexBlock(p *Pass, stmts []ast.Stmt, held map[string]bool) {
	held = copyKeys(held)
	for _, stmt := range stmts {
		for {
			ls, ok := stmt.(*ast.LabeledStmt)
			if !ok {
				break
			}
			stmt = ls.Stmt
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, isLock, ok := mutexOp(p.TypesInfo, s.X); ok {
				if isLock {
					held[key] = true
				} else {
					delete(held, key)
				}
				continue
			}
		case *ast.DeferStmt:
			if _, isLock, ok := mutexOp(p.TypesInfo, s.Call); ok && !isLock {
				continue // deferred unlock: held until return, keep scanning
			}
		}
		if len(held) > 0 {
			reportBlocking(p, stmt, held)
		}
		// Recurse into control-flow bodies so Lock/Unlock inside them are
		// tracked with their own scope.
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			checkMutexBlock(p, s.List, held)
		case *ast.IfStmt:
			for s != nil {
				checkMutexBlock(p, s.Body.List, held)
				switch els := s.Else.(type) {
				case *ast.BlockStmt:
					checkMutexBlock(p, els.List, held)
					s = nil
				case *ast.IfStmt:
					s = els
				default:
					s = nil
				}
			}
		case *ast.ForStmt:
			checkMutexBlock(p, s.Body.List, held)
		case *ast.RangeStmt:
			checkMutexBlock(p, s.Body.List, held)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkMutexBlock(p, cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkMutexBlock(p, cc.Body, held)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkMutexBlock(p, cc.Body, held)
				}
			}
		}
	}
}

// reportBlocking flags blocking operations directly inside stmt (not inside
// nested blocks, which the caller recurses into, and not inside function
// literals, which run later).
func reportBlocking(p *Pass, stmt ast.Stmt, held map[string]bool) {
	var heldNames []string
	for k := range held {
		heldNames = append(heldNames, strings.SplitN(k, "\x00", 2)[1])
	}
	lock := heldNames[0]
	for _, n := range heldNames[1:] {
		if n < lock {
			lock = n
		}
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BlockStmt:
			// Bodies of nested control flow are handled by checkMutexBlock.
			return false
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			p.Reportf(x.Pos(), "channel send while mutex %s is held; it can block every caller of this package", lock)
		case *ast.UnaryExpr:
			if x.Op.String() == "<-" {
				p.Reportf(x.Pos(), "channel receive while mutex %s is held; it can block every caller of this package", lock)
			}
		case *ast.CallExpr:
			if name, ok := blockingCall(p.TypesInfo, x); ok {
				p.Reportf(x.Pos(), "blocking call to %s while mutex %s is held; move it off the critical section", name, lock)
			}
		}
		return true
	})
}

// mutexOp recognizes x.Lock() / x.Unlock() on a sync.Mutex or sync.RWMutex
// (including RLock/RUnlock), returning a key identifying the mutex value.
func mutexOp(info *types.Info, e ast.Expr) (key string, isLock, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	recv, fn := methodRecv(info, call)
	if fn == nil {
		return "", false, false
	}
	if !typeIs(info.TypeOf(recv), "sync", "Mutex") && !typeIs(info.TypeOf(recv), "sync", "RWMutex") {
		return "", false, false
	}
	k := exprKey(info, recv)
	if k == "" {
		return "", false, false
	}
	k += "\x00" + renderExpr(recv)
	switch fn.Name() {
	case "Lock", "RLock":
		return k, true, true
	case "Unlock", "RUnlock":
		return k, false, true
	}
	return "", false, false
}

// blockingPkgs are packages whose calls perform (or can perform) I/O or
// unbounded waits.
var blockingPkgs = map[string]bool{
	"net": true, "os": true, "os/exec": true, "io": true, "bufio": true,
	"net/http": true, "log": true, "syscall": true,
}

// blockingCall reports whether call invokes a blocking operation: anything
// from blockingPkgs, fmt's writer/stdout family, or time.Sleep.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	path, name := obj.Pkg().Path(), obj.Name()
	full := path + "." + name
	if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
		full = path + " method " + name
	}
	switch {
	case blockingPkgs[path]:
		return full, true
	case path == "time" && name == "Sleep":
		return "time.Sleep", true
	case path == "fmt" && (strings.HasPrefix(name, "Print") ||
		strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Scan")):
		return full, true
	}
	return "", false
}

func copyKeys(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
