package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const spanPath = "e2ebatch/internal/obs/span"

// SpanFinish enforces the span lifecycle contract stated on Tracer.Finish:
// every Begin must reach exactly one Finish or Abort on every exit path, or
// the ring silently loses the request and the auditor under-counts. The
// open-span set is tracked lexically per block, mutexhold-style: Begin(&sp)
// opens sp's slot, Finish(&sp)/Abort(&sp) closes it (deferred closes count
// for the whole function), and a return or function end with a span still
// open is reported. Passing the span variable to anything other than the
// tracer closes the slot fail-open — ownership moved to code this lexical
// scan cannot see. Function literals are separate scopes: a closure is a
// callback with its own entry and exit paths.
var SpanFinish = &Analyzer{
	Name: "spanfinish",
	Doc:  "every span.Tracer Begin must reach a Finish or Abort on every exit path",
	Run:  runSpanFinish,
}

func runSpanFinish(p *Pass) {
	if p.Pkg.Path() == spanPath {
		return // the tracer's own package tests half-open spans on purpose
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkSpanScope(p, body)
			}
			return true
		})
	}
}

// openSpan records where a still-open span was begun.
type openSpan struct {
	pos  token.Pos
	name string
}

// checkSpanScope scans one function (or literal) body as its own scope.
func checkSpanScope(p *Pass, body *ast.BlockStmt) {
	open := checkSpanStmts(p, body.List, map[string]openSpan{})
	if len(open) > 0 && !endsInReturn(body.List) {
		reportOpenSpans(p, body.Rbrace, open, "function end")
	}
}

// checkSpanStmts scans one statement list, threading the open-span set
// through it; nested control-flow bodies are scanned with a copy, so a
// Begin inside an if-branch is checked against that branch's own exits.
// It returns the set still open after the list's straight-line path.
func checkSpanStmts(p *Pass, stmts []ast.Stmt, open map[string]openSpan) map[string]openSpan {
	open = copySpans(open)
	for _, stmt := range stmts {
		for {
			ls, ok := stmt.(*ast.LabeledStmt)
			if !ok {
				break
			}
			stmt = ls.Stmt
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, name, op, ok := spanOp(p.TypesInfo, s.X); ok {
				switch op {
				case spanOpBegin:
					open[key] = openSpan{pos: s.X.Pos(), name: name}
				case spanOpClose:
					delete(open, key)
				}
				continue
			}
		case *ast.DeferStmt:
			if key, _, op, ok := spanOp(p.TypesInfo, s.Call); ok && op == spanOpClose {
				// Deferred Finish/Abort closes the span on every exit path.
				delete(open, key)
				continue
			}
		case *ast.ReturnStmt:
			reportOpenSpans(p, s.Pos(), open, "return")
			continue
		}
		// Any other appearance of an open span's variable — passed to a
		// helper, assigned away — transfers ownership beyond this lexical
		// scan; close the slot fail-open rather than false-positive.
		closeTransferredSpans(p.TypesInfo, stmt, open)
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			checkSpanStmts(p, s.List, open)
		case *ast.IfStmt:
			for s != nil {
				checkSpanStmts(p, s.Body.List, open)
				switch els := s.Else.(type) {
				case *ast.BlockStmt:
					checkSpanStmts(p, els.List, open)
					s = nil
				case *ast.IfStmt:
					s = els
				default:
					s = nil
				}
			}
		case *ast.ForStmt:
			checkSpanStmts(p, s.Body.List, open)
		case *ast.RangeStmt:
			checkSpanStmts(p, s.Body.List, open)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkSpanStmts(p, cc.Body, open)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkSpanStmts(p, cc.Body, open)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkSpanStmts(p, cc.Body, open)
				}
			}
		}
	}
	return open
}

// reportOpenSpans flags every span still open at an exit point, in source
// order so diagnostics are deterministic.
func reportOpenSpans(p *Pass, at token.Pos, open map[string]openSpan, exit string) {
	spans := make([]openSpan, 0, len(open))
	for _, o := range open {
		spans = append(spans, o)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].pos < spans[j].pos })
	for _, o := range spans {
		p.Reportf(at, "span %s begun at line %d is not finished on this %s path; every Begin must reach a Finish or Abort",
			o.name, p.Fset.Position(o.pos).Line, exit)
	}
}

type spanOpKind int

const (
	spanOpBegin spanOpKind = iota
	spanOpClose
	spanOpNeutral // MarkSend and friends: touches the span, changes nothing
)

// spanOp recognizes span.Tracer lifecycle calls, returning a key for the
// span argument (the first argument, behind an optional &).
func spanOp(info *types.Info, e ast.Expr) (key, name string, op spanOpKind, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall || len(call.Args) == 0 {
		return "", "", 0, false
	}
	_, fn := methodRecv(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != spanPath {
		return "", "", 0, false
	}
	arg := ast.Unparen(call.Args[0])
	if ue, isAddr := arg.(*ast.UnaryExpr); isAddr && ue.Op == token.AND {
		arg = ast.Unparen(ue.X)
	}
	k := exprKey(info, arg)
	if k == "" {
		return "", "", 0, false
	}
	switch fn.Name() {
	case "Begin":
		return k, renderExpr(arg), spanOpBegin, true
	case "Finish", "Abort":
		return k, renderExpr(arg), spanOpClose, true
	case "MarkSend":
		return k, renderExpr(arg), spanOpNeutral, true
	}
	return "", "", 0, false
}

// closeTransferredSpans closes any open span whose variable appears in stmt
// outside a recognized tracer call — ownership left the scan's sight.
// Function literals are skipped: a closure capturing the span runs later,
// as its own scope.
func closeTransferredSpans(info *types.Info, stmt ast.Stmt, open map[string]openSpan) {
	if len(open) == 0 {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, _, _, ok := spanOp(info, x); ok {
				// The tracer's own calls keep ownership; recurse only into
				// the non-span arguments.
				for _, a := range x.Args[1:] {
					closeTransferredExpr(info, a, open)
				}
				return false
			}
		case *ast.Ident:
			if obj := identObj(info, x); obj != nil {
				closeRooted(open, obj)
			}
		}
		return true
	})
}

func closeTransferredExpr(info *types.Info, e ast.Expr, open map[string]openSpan) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent {
			if obj := identObj(info, id); obj != nil {
				closeRooted(open, obj)
			}
		}
		return true
	})
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// closeRooted closes every open span whose key is rooted at obj — exprKey
// renders a bare identifier as the object pointer and a selector chain as
// "<ptr>.field...", so touching the root transfers everything under it.
func closeRooted(open map[string]openSpan, obj types.Object) {
	root := fmt.Sprintf("%p", obj)
	for k := range open {
		if k == root || strings.HasPrefix(k, root+".") {
			delete(open, k)
		}
	}
}

// endsInReturn reports whether the list's last statement terminates the
// function on its own (so the function-end exit is unreachable and already
// checked at the return).
func endsInReturn(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	}
	return false
}

func copySpans(m map[string]openSpan) map[string]openSpan {
	out := make(map[string]openSpan, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
