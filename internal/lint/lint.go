// Package lint is e2ebatch's project-specific static analysis suite: a
// small analyzer framework (deliberately shaped after
// golang.org/x/tools/go/analysis, but built on the standard library alone so
// the repo stays dependency-free) plus twelve analyzers that mechanically
// enforce the concurrency, determinism, single-control-loop, shard-scheduling
// and hot-path allocation invariants the estimator's correctness and overhead
// budget depend on. The rules themselves live in one file per
// analyzer; DESIGN.md §8 "Enforced invariants" maps each rule to the paper
// algorithm or PR-1 guarantee it guards, and §13 covers the allocation
// discipline (hotpath, escapes).
//
// The suite is wired into tier-1 CI via cmd/e2elint and `make lint`: what
// used to be doc-comment contracts ("the plain State stays lock-free for
// single-goroutine hot paths", "per-run seeded determinism") is now checked
// on every build, the same way the paper insists on measured rather than
// assumed performance.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one project rule: a name (used in diagnostics and in
// //lint:ignore directives as "e2elint/<name>"), a short doc string, and the
// function that inspects one package (Run) or the whole loaded package set
// at once (RunModule — the shape the cross-package hot-path rules need,
// since an annotated function's callees may live in a different package).
// Exactly one of Run and RunModule is set.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass)
	RunModule func(*ModulePass)
}

// A Pass carries one type-checked package through one analyzer. Analyzers
// read the syntax and type information and call Reportf; they must not
// mutate the package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: e2elint/%s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ModulePass carries the whole loaded package set through one
// module-level analyzer (Analyzer.RunModule). All packages share one
// token.FileSet, so positions from any package resolve uniformly.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Fset.Position(pos), format, args...)
}

// ReportAt records a finding at an already-resolved position — the entry
// point for rules whose evidence comes from outside the fileset, e.g. the
// escapes analyzer parsing compiler diagnostics.
func (p *ModulePass) ReportAt(pos token.Position, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order. cmd/e2elint runs exactly
// this set; the driver test pins the count so a new analyzer cannot be added
// without registering it here.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockSafety,
		DetRand,
		WallClock,
		SnapshotPair,
		WireSize,
		MutexHold,
		EngineWiring,
		ObsDeterminism,
		HotPath,
		Escapes,
		PerTickerConn,
		SpanFinish,
	}
}

// Check runs every analyzer over one package — the single-package
// convenience over CheckPackages. Module-level analyzers see just this
// package, so their callee traversal stays within it.
func Check(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return CheckPackages([]*Package{pkg}, analyzers)
}

// CheckPackages runs every analyzer over pkgs — per-package rules on each
// package, module-level rules once over the whole set — applies the
// //lint:ignore directives found in any package's files, and returns the
// surviving diagnostics plus any malformed-directive findings, sorted by
// position.
func CheckPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			a.Run(pass)
			diags = append(diags, pass.diags...)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs}
		if len(pkgs) > 0 {
			mp.Fset = pkgs[0].Fset
		}
		a.RunModule(mp)
		diags = append(diags, mp.diags...)
	}
	ignores := map[ignoreKey]bool{}
	var bad []Diagnostic
	for _, pkg := range pkgs {
		ig, b := collectIgnores(pkg)
		for k := range ig {
			ignores[k] = true
		}
		bad = append(bad, b...)
	}
	diags = append(filterIgnored(diags, ignores), bad...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// ignoreRe matches the escape hatch: //lint:ignore e2elint/<name> <reason>.
// The reason is mandatory; collectIgnores turns a bare directive into a
// diagnostic of its own so suppressions are always justified in-tree.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+e2elint/([a-z]+)\s*(.*)$`)

// ignoreKey identifies a suppressed (file, line, analyzer) triple. A
// directive suppresses findings on its own line; a directive that is the
// only thing on its line suppresses the line below it (the staticcheck
// convention).
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

func collectIgnores(pkg *Package) (map[ignoreKey]bool, []Diagnostic) {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		// Directives always validate against the full registry, even when a
		// caller (e.g. a golden test) runs a single analyzer.
		known[a.Name] = true
	}
	ignores := map[ignoreKey]bool{}
	var bad []Diagnostic
	report := func(pos token.Position, format string, args ...any) {
		bad = append(bad, Diagnostic{Analyzer: "directive", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, f := range pkg.Files {
		code := codeLines(pkg.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:ignore") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					report(pos, "malformed //lint:ignore directive; want //lint:ignore e2elint/<analyzer> <reason>")
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				if !known[name] {
					report(pos, "//lint:ignore names unknown analyzer e2elint/%s", name)
					continue
				}
				if reason == "" {
					report(pos, "//lint:ignore e2elint/%s is missing its reason string", name)
					continue
				}
				line := pos.Line
				if col, ok := code[line]; !ok || col >= pos.Column {
					// The directive is the first token on its line, so it
					// suppresses the line below (staticcheck convention);
					// trailing a statement, it suppresses that statement.
					line++
				}
				ignores[ignoreKey{pos.Filename, line, name}] = true
			}
		}
	}
	return ignores, bad
}

// codeLines maps each source line of f holding non-comment tokens to the
// smallest column such a token starts or ends at, distinguishing directives
// that trail code from directives standing on their own line.
func codeLines(fset *token.FileSet, f *ast.File) map[int]int {
	lines := map[int]int{}
	mark := func(p token.Pos) {
		if !p.IsValid() {
			return
		}
		pos := fset.Position(p)
		if col, ok := lines[pos.Line]; !ok || pos.Column < col {
			lines[pos.Line] = pos.Column
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		mark(n.Pos())
		mark(n.End() - 1)
		return true
	})
	return lines
}

func filterIgnored(diags []Diagnostic, ignores map[ignoreKey]bool) []Diagnostic {
	if len(ignores) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}
