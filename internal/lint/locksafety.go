package lint

import (
	"go/ast"
	"go/types"
)

// LockSafety enforces the Tracker/SharedEstimator doc contract from PR 1:
// the lock-free hot-path types — qstate.State, core.Estimator,
// hints.Estimator — are single-goroutine values; any code that runs on (or
// shares state with) a spawned goroutine must use their mutex-guarded
// counterparts (qstate.Tracker, core.SharedEstimator, hints.Tracker).
//
// Three concurrency contexts are checked, all resolved statically within
// the package:
//
//  1. method calls on a lock-free value inside a `go func() { ... }` body,
//     unless the value is declared inside that body (goroutine-local);
//  2. method calls inside a named function or method that is the direct
//     target of a go statement anywhere in the package (`go c.readLoop()`),
//     unless the value is local to that function;
//  3. method calls on a value that is *also* captured by a go literal in the
//     same function — the value crosses the goroutine boundary, so every
//     unsynchronized use of it is a potential race.
//
// The analysis is deliberately conservative: values passed into goroutines
// through channels or struct fields across packages are not tracked. It
// exists to catch the mistake -race only catches when a test happens to
// interleave.
var LockSafety = &Analyzer{
	Name: "locksafety",
	Doc:  "forbid lock-free estimator state in goroutine-spawning contexts",
	Run:  runLockSafety,
}

// lockFreeTypes maps each single-goroutine type to its safe replacement.
var lockFreeTypes = []struct {
	pkg, name, safe string
}{
	{qstatePath, "State", "qstate.Tracker"},
	{corePath, "Estimator", "core.SharedEstimator"},
	{hintsPath, "Estimator", "a per-goroutine hints.Estimator"},
}

func lockFreeType(t types.Type) (string, string, bool) {
	for _, lf := range lockFreeTypes {
		if typeIs(t, lf.pkg, lf.name) {
			return lf.name, lf.safe, true
		}
	}
	return "", "", false
}

func runLockSafety(p *Pass) {
	// Pass 1: functions/methods in this package that are direct go targets.
	goTargets := map[types.Object]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if obj := calleeObj(p.TypesInfo, gs.Call); obj != nil {
				goTargets[obj] = true
			}
			return true
		})
	}

	for _, fd := range funcDecls(p) {
		isGoTarget := goTargets[p.TypesInfo.Defs[fd.Name]]
		checkLockSafetyFunc(p, fd, isGoTarget)
	}
}

func checkLockSafetyFunc(p *Pass, fd *ast.FuncDecl, isGoTarget bool) {
	body := fd.Body

	// Go-literal bodies spawned within this function, and the set of outside
	// objects each captures.
	var goLits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				goLits = append(goLits, lit)
			}
		}
		return true
	})
	inGoLit := func(pos ast.Node) *ast.FuncLit {
		for _, lit := range goLits {
			if pos.Pos() >= lit.Body.Pos() && pos.End() <= lit.Body.End() {
				return lit
			}
		}
		return nil
	}

	// Objects captured by some go literal: used inside one, declared outside.
	captured := map[types.Object]bool{}
	for _, lit := range goLits {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[id]
			if obj != nil && !declaredWithin(obj, lit.Body) {
				captured[obj] = true
			}
			return true
		})
	}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, fn := methodRecv(p.TypesInfo, call)
		if fn == nil {
			return true
		}
		name, safe, ok := lockFreeType(p.TypesInfo.TypeOf(recv))
		if !ok {
			return true
		}
		root := rootObj(p.TypesInfo, recv)
		switch {
		case inGoLit(call) != nil:
			if root != nil && declaredWithin(root, inGoLit(call).Body) {
				return true // goroutine-local value
			}
			p.Reportf(call.Pos(),
				"lock-free %s.%s called from a spawned goroutine; use %s",
				name, fn.Name(), safe)
		case isGoTarget:
			if root != nil && declaredWithin(root, body) {
				return true
			}
			p.Reportf(call.Pos(),
				"lock-free %s.%s in %s, which runs as a goroutine (`go %s(...)` elsewhere in this package); use %s",
				name, fn.Name(), fd.Name.Name, fd.Name.Name, safe)
		case root != nil && captured[root]:
			p.Reportf(call.Pos(),
				"lock-free %s.%s on %s, which a goroutine spawned in %s also captures; use %s",
				name, fn.Name(), renderExpr(recv), fd.Name.Name, safe)
		}
		return true
	})
}
