package lint

import (
	"go/ast"
	"go/types"
)

// The //e2e:hotpath annotation marks a function as part of the
// estimate→policy tick's allocation-free hot path: the control loop's own
// overhead must stay negligible next to the queueing delays it estimates,
// and on the 100k-connection trajectory every per-tick allocation multiplies
// into GC pressure that perturbs the very latencies being measured. The
// contract an annotated function signs is enforced by three layers
// (DESIGN.md §13): this AST pass, the compiler-backed escapes analyzer, and
// the testing.AllocsPerRun allocgate tests.
//
// HotPath walks every annotated function and its statically-resolvable
// intra-module callees (the transitive closure over the loaded packages) and
// flags the constructs that force or invite allocation:
//
//   - defer statements (also a latency tax on the tick);
//   - function literals capturing local variables (the closure and its
//     captures move to the heap);
//   - fmt/errors calls (formatting allocates; errors.New escapes);
//   - map and slice composite literals, and make of a map/slice/chan;
//   - append (growth reallocates; hot paths use pre-sized scratch);
//   - string ↔ []byte conversions (both directions copy);
//   - interface boxing at call sites: a non-pointer-shaped concrete value
//     passed where an interface is expected heap-allocates the value.
//
// Calls through interfaces and function values cannot be traversed
// statically and are skipped — the allocgate tests cover what the walk
// cannot see. Arguments of panic calls are exempt: a panicking tick is
// already dead, so the fmt.Sprintf in a panic message costs nothing on the
// live path. //lint:ignore e2elint/hotpath remains the justified escape
// hatch for the rest.
var HotPath = &Analyzer{
	Name:      "hotpath",
	Doc:       "forbid allocation-forcing constructs in //e2e:hotpath functions and their intra-module callees",
	RunModule: runHotPath,
}

// hotpathDirective is the annotation, placed in a function's doc comment.
const hotpathDirective = "//e2e:hotpath"

// hotFunc is one function declaration paired with the package it lives in.
type hotFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// collectHotFuncs returns the //e2e:hotpath-annotated functions across pkgs
// plus an index of every function declaration with a body, for callee
// traversal.
func collectHotFuncs(pkgs []*Package) (roots []hotFunc, index map[*types.Func]hotFunc) {
	index = map[*types.Func]hotFunc{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				hf := hotFunc{pkg: pkg, decl: fd}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					index[obj] = hf
				}
				if hasHotpathDirective(fd) {
					roots = append(roots, hf)
				}
			}
		}
	}
	return roots, index
}

// hasHotpathDirective reports whether fd's doc comment carries the
// //e2e:hotpath annotation.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective {
			return true
		}
	}
	return false
}

// funcDisplayName renders a function for diagnostics: "Name" or
// "(Recv).Name".
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + renderExpr(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

func runHotPath(p *ModulePass) {
	for _, e := range hotClosure(p.Pkgs) {
		scanHotBody(p, e.fn, e.root)
	}
}

// hotEntry is one function on the hot path: the function itself plus the
// display name of the annotated root it was reached from (its own name when
// it is the root).
type hotEntry struct {
	fn   hotFunc
	root string
}

// hotClosure computes the transitive closure of //e2e:hotpath functions over
// statically-resolvable intra-module calls, breadth-first so each function is
// attributed to the nearest annotated root. Both the AST pass and the escapes
// analyzer enforce over exactly this set.
func hotClosure(pkgs []*Package) []hotEntry {
	roots, index := collectHotFuncs(pkgs)
	var queue []hotEntry
	for _, r := range roots {
		queue = append(queue, hotEntry{r, funcDisplayName(r.decl)})
	}
	visited := map[*ast.FuncDecl]bool{}
	var out []hotEntry
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if visited[it.fn.decl] {
			continue
		}
		visited[it.fn.decl] = true
		out = append(out, it)
		for _, callee := range intraModuleCallees(it.fn, index) {
			if !visited[callee.decl] {
				queue = append(queue, hotEntry{callee, it.root})
			}
		}
	}
	return out
}

// intraModuleCallees resolves the statically-known functions fn's body
// calls that have a declaration in the loaded package set. Calls inside
// function literals are excluded (the literal's body runs off the tick,
// when it runs at all), as are calls through interfaces or function values
// (unresolvable).
func intraModuleCallees(fn hotFunc, index map[*types.Func]hotFunc) []hotFunc {
	info := fn.pkg.Info
	var out []hotFunc
	seen := map[*types.Func]bool{}
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var obj types.Object
		if recv, m := methodRecv(info, call); m != nil && recv != nil {
			obj = m
		} else {
			obj = calleeObj(info, call)
		}
		f, ok := obj.(*types.Func)
		if !ok || seen[f] {
			return true
		}
		if callee, ok := index[f]; ok {
			seen[f] = true
			out = append(out, callee)
		}
		return true
	})
	return out
}

// scanHotBody flags the allocation-forcing constructs lexically inside one
// hot function's body. where names the function in diagnostics, suffixed
// with the annotated root when the function was reached as a callee.
func scanHotBody(p *ModulePass, fn hotFunc, root string) {
	info := fn.pkg.Info
	where := "//e2e:hotpath function " + root
	if name := funcDisplayName(fn.decl); name != root {
		where = name + ", on the hot path of //e2e:hotpath " + root
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if capturesLocals(info, x, fn.decl) {
				p.Reportf(x.Pos(),
					"closure captures local variables in %s; the closure and its captures allocate", where)
			}
			return false // the literal's body runs off the hot path
		case *ast.DeferStmt:
			p.Reportf(x.Pos(), "defer in %s; unlock explicitly on every return path instead", where)
		case *ast.CallExpr:
			if isPanicCall(info, x) {
				// A panicking tick is already dead; its message may format.
				return false
			}
			checkHotCall(p, info, x, where)
		case *ast.CompositeLit:
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Map:
				p.Reportf(x.Pos(), "map literal in %s; maps always allocate", where)
			case *types.Slice:
				p.Reportf(x.Pos(), "slice literal in %s; hoist it to a package var or endpoint scratch field", where)
			}
		}
		return true
	}
	ast.Inspect(fn.decl.Body, walk)
}

// capturesLocals reports whether lit references a variable declared in the
// enclosing function outside the literal itself — the captures that force
// the closure onto the heap. Package-level state is shared, not captured.
func capturesLocals(info *types.Info, lit *ast.FuncLit, encl *ast.FuncDecl) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj := info.Uses[id]
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if declaredWithin(obj, encl) && !declaredWithin(obj, lit) {
			captured = true
		}
		return true
	})
	return captured
}

// isPanicCall reports whether call invokes the panic builtin.
func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// checkHotCall flags the call-shaped constructs: conversions, builtins,
// fmt/errors, and interface boxing of arguments.
func checkHotCall(p *ModulePass, info *types.Info, call *ast.CallExpr, where string) {
	// string ↔ []byte conversions are CallExprs whose Fun is a type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, info.TypeOf(call.Args[0])
		if isStringByteConv(dst, src) {
			p.Reportf(call.Pos(), "string/[]byte conversion in %s; both directions copy and allocate", where)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				p.Reportf(call.Pos(), "append in %s; growth reallocates — use a pre-sized scratch buffer", where)
			case "make":
				if len(call.Args) > 0 {
					switch info.TypeOf(call.Args[0]).Underlying().(type) {
					case *types.Map, *types.Slice, *types.Chan:
						p.Reportf(call.Pos(), "make in %s; allocate once at construction, not per tick", where)
					}
				}
			}
			return
		}
	}
	if obj := calleeObj(info, call); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case "fmt", "errors":
			p.Reportf(call.Pos(), "call to %s.%s in %s; formatting and error construction allocate",
				obj.Pkg().Path(), obj.Name(), where)
			return
		}
	}
	checkBoxedArgs(p, info, call, where)
}

// isStringByteConv reports a conversion between string and []byte in
// either direction.
func isStringByteConv(a, b types.Type) bool {
	return (isString(a) && isByteSlice(b)) || (isByteSlice(a) && isString(b))
}

func isString(t types.Type) bool {
	bt, ok := t.Underlying().(*types.Basic)
	return ok && bt.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	st, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	bt, ok := st.Elem().Underlying().(*types.Basic)
	return ok && bt.Kind() == types.Byte
}

// checkBoxedArgs flags arguments whose concrete, non-pointer-shaped values
// convert to an interface parameter at the call site — the conversion heap-
// allocates a copy of the value on every call.
func checkBoxedArgs(p *ModulePass, info *types.Info, call *ast.CallExpr, where string) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, elements unboxed
			}
			st, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if !types.IsInterface(pt) || at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if bt, ok := at.(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			continue
		}
		if pointerShaped(at) {
			continue // the pointer word stores directly, no allocation
		}
		p.Reportf(arg.Pos(), "interface boxing in %s: %s converts to %s and heap-allocates per call",
			where, at.String(), pt.String())
	}
}

// pointerShaped reports whether values of t fit an interface's data word
// without allocating: pointers, channels, maps, functions, unsafe pointers.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
