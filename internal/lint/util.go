package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Import paths of the packages whose contracts the analyzers enforce.
const (
	qstatePath = "e2ebatch/internal/qstate"
	corePath   = "e2ebatch/internal/core"
	hintsPath  = "e2ebatch/internal/hints"
	policyPath = "e2ebatch/internal/policy"
	enginePath = "e2ebatch/internal/engine"
)

// calleeObj resolves the object a call expression invokes: the *types.Func
// for direct calls and method calls, or the *types.Var for calls through a
// function-typed variable (the e2ebatch facade re-exports qstate functions
// as package-level vars).
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// objIs reports whether obj is the package-level object pkgPath.name.
func objIs(obj types.Object, pkgPath, name string) bool {
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedType unwraps pointers and aliases down to the *types.Named beneath t,
// or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIs reports whether t (possibly behind a pointer or alias) is the named
// type pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	return n != nil && objIs(n.Obj(), pkgPath, name)
}

// methodRecv returns the receiver expression and resolved method object of a
// method call, or nils for anything else.
func methodRecv(info *types.Info, call *ast.CallExpr) (ast.Expr, *types.Func) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return nil, nil
	}
	fn, _ := selection.Obj().(*types.Func)
	return sel.X, fn
}

// rootObj returns the object of the identifier at the root of a selector
// chain (c in c.est.tracker), or nil when the expression is rooted in
// anything else (a call, an index, a literal).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprKey renders a selector chain rooted at an identifier as a stable key
// ("<obj ptr>.field1.field2") so two syntactic references to the same
// variable path compare equal. It returns "" for expressions it cannot
// name (calls, indexing, composite literals).
func exprKey(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("%p", obj)
	case *ast.SelectorExpr:
		base := exprKey(info, x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprKey(info, x.X)
	}
	return ""
}

// declaredWithin reports whether obj's declaration lies inside node's source
// range — i.e. the variable is local to that function body or literal.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && node != nil &&
		obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// renderExpr prints a small expression for diagnostics.
func renderExpr(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return renderExpr(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + renderExpr(x.X)
	case *ast.CallExpr:
		return renderExpr(x.Fun) + "(...)"
	case *ast.ParenExpr:
		return "(" + renderExpr(x.X) + ")"
	}
	return "expression"
}

// funcDecls yields every function declaration with a body in the pass.
func funcDecls(p *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// pathIsOneOf reports whether path is one of the candidate import paths or
// lies beneath one of them.
func pathIsOneOf(path string, candidates ...string) bool {
	for _, c := range candidates {
		if path == c || strings.HasPrefix(path, c+"/") {
			return true
		}
	}
	return false
}
