package lint

import (
	"go/ast"
)

// SnapshotPair guards Algorithm 2's precondition: GetAvgs (and its wire
// sibling WireAvgs) subtracts two *successive snapshots of the same queue*.
// Feeding it snapshots of two different trackers yields deltas that look
// plausible — positive elapsed time, positive departures — while describing
// no queue at all, so nothing downstream can catch the mistake.
//
// The analyzer traces each argument to its producing tracker within the
// calling function: directly through x.Snapshot(...) / x.Peek() / x.Wire()
// results (unwrapping ToWire), or through a local variable with exactly one
// assignment from such a call. A call is flagged only when BOTH arguments
// resolve and the producing values differ — anything short of proof stays
// silent, since snapshots routinely cross function and struct boundaries
// (core.Queues, the prev/now pairs estimators carry).
var SnapshotPair = &Analyzer{
	Name: "snapshotpair",
	Doc:  "forbid GetAvgs/WireAvgs over snapshots of two different trackers",
	Run:  runSnapshotPair,
}

func runSnapshotPair(p *Pass) {
	for _, fd := range funcDecls(p) {
		body := fd.Body
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p.TypesInfo, call)
			var name string
			switch {
			case objIs(obj, qstatePath, "GetAvgs") ||
				(obj != nil && obj.Name() == "GetAvgs" && objIs(obj, "e2ebatch", "GetAvgs")):
				name = "GetAvgs"
			case objIs(obj, qstatePath, "WireAvgs") ||
				(obj != nil && obj.Name() == "WireAvgs" && objIs(obj, "e2ebatch", "WireAvgs")):
				name = "WireAvgs"
			default:
				return true
			}
			if len(call.Args) != 2 {
				return true
			}
			prev := snapshotOrigin(p, body, call.Args[0], 0)
			now := snapshotOrigin(p, body, call.Args[1], 0)
			if prev != "" && now != "" && prev != now {
				p.Reportf(call.Pos(),
					"%s arguments come from different trackers (%s vs %s); Algorithm 2 needs two successive snapshots of the same queue",
					name, originLabel(p, body, call.Args[0]), originLabel(p, body, call.Args[1]))
			}
			return true
		})
	}
}

// snapshotProducers are the methods whose receiver identifies the queue a
// snapshot belongs to.
var snapshotProducers = map[string]bool{"Snapshot": true, "Peek": true, "Wire": true}

// snapshotOrigin resolves expr to a key naming the tracker value its
// snapshot was taken from, or "" when unknown.
func snapshotOrigin(p *Pass, body *ast.BlockStmt, expr ast.Expr, depth int) string {
	if depth > 8 {
		return ""
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if recv, fn := methodRecv(p.TypesInfo, e); fn != nil && snapshotProducers[fn.Name()] {
			return exprKey(p.TypesInfo, recv)
		}
		// ToWire(snap) carries its argument's origin onto the wire.
		if objIs(calleeObj(p.TypesInfo, e), qstatePath, "ToWire") && len(e.Args) == 1 {
			return snapshotOrigin(p, body, e.Args[0], depth+1)
		}
	case *ast.Ident:
		if rhs := soleAssignment(p, body, e); rhs != nil {
			return snapshotOrigin(p, body, rhs, depth+1)
		}
	}
	return ""
}

// soleAssignment returns the single right-hand side ever assigned to ident's
// object within body, or nil when there are zero or several assignments
// (reassignment makes the origin flow-sensitive, which this analyzer does
// not attempt).
func soleAssignment(p *Pass, body *ast.BlockStmt, ident *ast.Ident) ast.Expr {
	obj := p.TypesInfo.Uses[ident]
	if obj == nil || !declaredWithin(obj, body) {
		return nil
	}
	var rhs ast.Expr
	count := 0
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			lobj := p.TypesInfo.Defs[id]
			if lobj == nil {
				lobj = p.TypesInfo.Uses[id]
			}
			if lobj == obj {
				rhs = as.Rhs[i]
				count++
			}
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return rhs
}

// originLabel renders the argument's producing expression for the message.
func originLabel(p *Pass, body *ast.BlockStmt, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if recv, fn := methodRecv(p.TypesInfo, e); fn != nil && snapshotProducers[fn.Name()] {
			return renderExpr(recv)
		}
		if objIs(calleeObj(p.TypesInfo, e), qstatePath, "ToWire") && len(e.Args) == 1 {
			return originLabel(p, body, e.Args[0])
		}
	case *ast.Ident:
		if rhs := soleAssignment(p, body, e); rhs != nil {
			return originLabel(p, body, rhs)
		}
	}
	return renderExpr(expr)
}
