package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Escapes is the compiler-backed half of the hot-path allocation gate: where
// the hotpath analyzer pattern-matches allocation-forcing syntax, this one
// asks the gc compiler's escape analysis for ground truth. It rebuilds every
// package containing //e2e:hotpath functions (or their intra-module callees)
// with -gcflags=-m, parses the escape diagnostics, and fails when a local
// inside a hot function moves to the heap — the case the AST pass cannot
// prove either way, e.g. a pointer that leaks through a callee's parameter.
//
// Only "moved to heap:" and "escapes to heap" diagnostics landing inside a
// hot function's source range are findings; inlining chatter and
// "does not escape" confirmations are discarded. The build runs through the
// normal go build cache, so a warm tree re-checks in milliseconds.
//
// The compiler is a heavyweight dependency relative to the pure go/types
// suite, so cmd/e2elint runs this analyzer only under its -escapes flag
// (wired into `make tier1`), keeping plain `e2elint ./...` fast.
var Escapes = &Analyzer{
	Name:      "escapes",
	Doc:       "fail when gc escape analysis moves an //e2e:hotpath function's locals to the heap",
	RunModule: runEscapes,
}

// escapeDiagRe matches one compiler diagnostic: path:line:col: message.
var escapeDiagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

func runEscapes(p *ModulePass) {
	closure := hotClosure(p.Pkgs)
	if len(closure) == 0 {
		return
	}

	// Index hot functions by absolute file and line range, and collect the
	// distinct packages to rebuild. Loose (testdata) packages compile by
	// directory, module packages by import path.
	type span struct {
		start, end int
		file       string // the filename as the Fset knows it, for reporting
		where      string
	}
	spans := map[string][]span{}      // absolute file path -> hot ranges
	cold := map[string]map[int]bool{} // absolute file path -> panic-arg lines
	moduleDir := ""
	targets := map[string]bool{} // build target -> is a main package
	for _, e := range closure {
		pos := e.fn.pkg.Fset.Position(e.fn.decl.Pos())
		end := e.fn.pkg.Fset.Position(e.fn.decl.End())
		abs, err := filepath.Abs(pos.Filename)
		if err != nil {
			continue
		}
		// The same panic exemption the AST pass applies: escapes forced by
		// the arguments of a panic call are off the live path.
		info, fset := e.fn.pkg.Info, e.fn.pkg.Fset
		ast.Inspect(e.fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPanicCall(info, call) {
				return true
			}
			if cold[abs] == nil {
				cold[abs] = map[int]bool{}
			}
			for l := fset.Position(call.Pos()).Line; l <= fset.Position(call.End()).Line; l++ {
				cold[abs][l] = true
			}
			return true
		})
		where := "//e2e:hotpath function " + e.root
		if name := funcDisplayName(e.fn.decl); name != e.root {
			where = name + ", on the hot path of //e2e:hotpath " + e.root
		}
		spans[abs] = append(spans[abs], span{pos.Line, end.Line, pos.Filename, where})
		moduleDir = e.fn.pkg.moduleDir
		isMain := e.fn.pkg.Types != nil && e.fn.pkg.Types.Name() == "main"
		if e.fn.pkg.loose {
			if rel, err := filepath.Rel(moduleDir, mustAbs(e.fn.pkg.Dir)); err == nil {
				targets["./"+filepath.ToSlash(rel)] = isMain
			}
		} else {
			targets[e.fn.pkg.Path] = isMain
		}
	}

	// -gcflags=-m applies to the packages named on the command line, so the
	// compiler reports on exactly the hot packages. go build discards the
	// compiled objects for non-main packages and multi-package builds; only
	// a lone main package would drop a binary into moduleDir, so that one
	// case diverts it to a throwaway file.
	args := []string{"build", "-gcflags=-m"}
	if len(targets) == 1 {
		for _, isMain := range targets {
			if isMain {
				tmp, err := os.MkdirTemp("", "e2elint-escapes-")
				if err != nil {
					p.ReportAt(token.Position{}, "escape analysis setup failed: %v", err)
					return
				}
				defer os.RemoveAll(tmp)
				args = append(args, "-o", filepath.Join(tmp, "bin"))
			}
		}
	}
	flags := len(args)
	for t := range targets {
		args = append(args, t)
	}
	sort.Strings(args[flags:])
	out, err := goBuildDiag(moduleDir, args...)
	if err != nil {
		p.ReportAt(token.Position{}, "go build -gcflags=-m failed: %v", err)
		return
	}

	for _, line := range strings.Split(string(out), "\n") {
		m := escapeDiagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.HasPrefix(msg, "moved to heap:") && !strings.Contains(msg, "escapes to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleDir, file)
		}
		file = filepath.Clean(file)
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		if cold[file][ln] {
			continue
		}
		for _, s := range spans[file] {
			if ln >= s.start && ln <= s.end {
				// Report under the Fset's spelling of the filename so
				// //lint:ignore directives (matched by Fset position) apply.
				p.ReportAt(token.Position{Filename: s.file, Line: ln, Column: col},
					"compiler escape analysis: %s in %s", msg, s.where)
				break
			}
		}
	}
}

func mustAbs(path string) string {
	abs, err := filepath.Abs(path)
	if err != nil {
		return path
	}
	return abs
}

// goBuildDiag runs a go command and returns its stderr — where the compiler
// writes -m diagnostics — on success. The diagnostics replay from the build
// cache, so repeated runs over an unchanged tree stay cheap.
func goBuildDiag(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, stderr.Bytes())
	}
	return stderr.Bytes(), nil
}
