package lint

import (
	"go/ast"
	"go/types"
)

// WireSize steers callers of the 36-byte wire codec to DecodeWireExact.
// DecodeWire accepts any buffer of at least 36 bytes and silently ignores
// trailing data, which is the right primitive for streaming parsers but a
// trap on framed transports: a corrupted length field decodes a garbage
// prefix instead of failing. Any call to DecodeWire outside package qstate
// is flagged unless the argument is provably exactly WireSize bytes (a full
// slice of a [WireSize]byte array). Calls through the e2ebatch facade's
// DecodeWire variable are resolved and flagged the same way.
var WireSize = &Analyzer{
	Name: "wiresize",
	Doc:  "require DecodeWireExact (or a provably exact buffer) for wire-state decoding",
	Run:  runWireSize,
}

func runWireSize(p *Pass) {
	if pathIsOneOf(p.Pkg.Path(), qstatePath) {
		return // the codec's own implementation and tests
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isDecodeWire(p.TypesInfo, call) {
				return true
			}
			if len(call.Args) == 1 && exactWireBuf(p.TypesInfo, call.Args[0]) {
				return true
			}
			p.Reportf(call.Pos(),
				"DecodeWire ignores trailing bytes; use DecodeWireExact on framed payloads (or decode from a [WireSize]byte array)")
			return true
		})
	}
}

// isDecodeWire reports whether the call resolves to qstate.DecodeWire,
// either directly or through a function-typed variable (the facade alias)
// with the same name and signature.
func isDecodeWire(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Name() != "DecodeWire" {
		return false
	}
	if objIs(obj, qstatePath, "DecodeWire") {
		return true
	}
	// A var such as e2ebatch.DecodeWire: require the qstate signature so an
	// unrelated DecodeWire elsewhere is not caught.
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	return typeIs(sig.Results().At(0).Type(), qstatePath, "WireState")
}

// exactWireBuf reports whether e is a full slice (or direct use) of a
// [WireSize]byte array — a buffer whose length the type system pins to 36.
func exactWireBuf(info *types.Info, e ast.Expr) bool {
	slice, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || slice.Low != nil || slice.High != nil {
		return false
	}
	arr, ok := types.Unalias(info.TypeOf(slice.X)).(*types.Array)
	if !ok {
		if ptr, isPtr := types.Unalias(info.TypeOf(slice.X)).(*types.Pointer); isPtr {
			arr, ok = types.Unalias(ptr.Elem()).(*types.Array)
		}
		if !ok {
			return false
		}
	}
	return arr != nil && arr.Len() == 36
}
