package lint

import (
	"go/ast"
	"go/types"
)

// WireSize steers callers of the wire codecs to their Exact variants.
// DecodeWire accepts any buffer of at least 36 bytes and silently ignores
// trailing data, and DecodeFrame likewise decodes a valid prefix out of an
// over-long buffer — the right primitives for streaming parsers but a trap
// on framed transports: a corrupted length field decodes a garbage prefix
// instead of failing. Any call to DecodeWire or DecodeFrame outside package
// qstate is flagged unless the argument is provably exactly one encoding (a
// full slice of a [WireSize]byte array, or for frames also [FrameV2Size]).
// Calls through the e2ebatch facade's DecodeWire variable are resolved and
// flagged the same way.
var WireSize = &Analyzer{
	Name: "wiresize",
	Doc:  "require DecodeWireExact/DecodeFrameExact (or a provably exact buffer) for wire-state decoding",
	Run:  runWireSize,
}

func runWireSize(p *Pass) {
	if pathIsOneOf(p.Pkg.Path(), qstatePath) {
		return // the codec's own implementation and tests
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isDecodeWire(p.TypesInfo, call):
				if len(call.Args) == 1 && exactWireBuf(p.TypesInfo, call.Args[0], 36) {
					return true
				}
				p.Reportf(call.Pos(),
					"DecodeWire ignores trailing bytes; use DecodeWireExact on framed payloads (or decode from a [WireSize]byte array)")
			case isDecodeFrame(p.TypesInfo, call):
				if len(call.Args) == 1 &&
					(exactWireBuf(p.TypesInfo, call.Args[0], 36) ||
						exactWireBuf(p.TypesInfo, call.Args[0], frameV2Size)) {
					return true
				}
				p.Reportf(call.Pos(),
					"DecodeFrame decodes a prefix of over-long buffers; use DecodeFrameExact on framed payloads (or decode from a [WireSize]byte or [FrameV2Size]byte array)")
			}
			return true
		})
	}
}

// frameV2Size mirrors qstate.FrameV2Size (version byte + 36-byte WireState +
// 3 histograms × 66 buckets × 4 bytes). The codec's size test pins the
// constant; a drift there would surface here as an analyzer test failure.
const frameV2Size = 1 + 36 + 3*66*4

// isDecodeWire reports whether the call resolves to qstate.DecodeWire,
// either directly or through a function-typed variable (the facade alias)
// with the same name and signature.
func isDecodeWire(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Name() != "DecodeWire" {
		return false
	}
	if objIs(obj, qstatePath, "DecodeWire") {
		return true
	}
	// A var such as e2ebatch.DecodeWire: require the qstate signature so an
	// unrelated DecodeWire elsewhere is not caught.
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	return typeIs(sig.Results().At(0).Type(), qstatePath, "WireState")
}

// isDecodeFrame reports whether the call resolves to qstate.DecodeFrame,
// directly or through a function-typed variable with the same name and the
// frame codec's signature.
func isDecodeFrame(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	if obj == nil || obj.Name() != "DecodeFrame" {
		return false
	}
	if objIs(obj, qstatePath, "DecodeFrame") {
		return true
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	return typeIs(sig.Results().At(0).Type(), qstatePath, "WireFrame")
}

// exactWireBuf reports whether e is a full slice (or direct use) of a
// [size]byte array — a buffer whose length the type system pins exactly.
func exactWireBuf(info *types.Info, e ast.Expr, size int64) bool {
	slice, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || slice.Low != nil || slice.High != nil {
		return false
	}
	arr, ok := types.Unalias(info.TypeOf(slice.X)).(*types.Array)
	if !ok {
		if ptr, isPtr := types.Unalias(info.TypeOf(slice.X)).(*types.Pointer); isPtr {
			arr, ok = types.Unalias(ptr.Elem()).(*types.Array)
		}
		if !ok {
			return false
		}
	}
	return arr != nil && arr.Len() == size
}
