package lint

import (
	"go/ast"
	"strconv"
)

// goldenPackages are the packages whose output is pinned byte-for-byte by
// golden tests: the discrete-event simulator, the simulated TCP stack, and
// the figure runners. The PR-8 telemetry plane is deliberately kept out of
// all three — a registry increment or ring push on a simulated hot path is
// a side channel that can reorder allocations, perturb timings under
// -race, and quietly grow into control flow ("if counter > N").
var goldenPackages = []string{
	"e2ebatch/internal/sim",
	"e2ebatch/internal/tcpsim",
	"e2ebatch/internal/figures",
}

// ObsDeterminism forbids any reference to internal/obs — imports, registry
// reads or writes, ring pushes, type references — inside the
// golden-determinism packages. Telemetry reaches simulated runs only
// through the engine.Observer hook (an interface defined in
// internal/engine, so accepting one needs no obs import), which the golden
// tests run with a nil observer; everything else exports post-hoc from a
// finished trace.Log.
var ObsDeterminism = &Analyzer{
	Name: "obsdeterminism",
	Doc:  "forbid internal/obs references inside golden-determinism packages",
	Run:  runObsDeterminism,
}

const obsPath = "e2ebatch/internal/obs"

func runObsDeterminism(p *Pass) {
	path := p.Pkg.Path()
	if !pathIsOneOf(path, goldenPackages...) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if ip, err := strconv.Unquote(imp.Path.Value); err == nil && ip == obsPath {
				p.Reportf(imp.Pos(),
					"import of %s in golden-determinism package %s: telemetry may only enter through an engine.Observer hook",
					obsPath, path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[id]
			// The qualifier ident ("obs" in obs.NewRegistry) resolves to a
			// PkgName owned by the importing package, so only the selected
			// object itself matches here — one finding per use, not two.
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != obsPath {
				return true
			}
			p.Reportf(id.Pos(),
				"use of %s.%s in golden-determinism package %s: obs must stay behind the engine.Observer seam so golden figure output cannot be perturbed",
				obsPath, obj.Name(), path)
			return true
		})
	}
}
