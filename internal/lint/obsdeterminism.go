package lint

import (
	"go/ast"
	"strconv"
)

// goldenPackages are the packages whose output is pinned byte-for-byte by
// golden tests: the discrete-event simulator, the simulated TCP stack, and
// the figure runners. The PR-8 telemetry plane is deliberately kept out of
// all three — a registry increment or ring push on a simulated hot path is
// a side channel that can reorder allocations, perturb timings under
// -race, and quietly grow into control flow ("if counter > N").
var goldenPackages = []string{
	"e2ebatch/internal/sim",
	"e2ebatch/internal/tcpsim",
	"e2ebatch/internal/figures",
}

// ObsDeterminism forbids any reference to the internal/obs subtree —
// imports, registry reads or writes, ring pushes, span tracing, type
// references — inside the golden-determinism packages. That covers
// internal/obs itself and internal/obs/span: a span Begin/Finish on a
// simulated hot path is as much a side channel as a counter increment.
// Telemetry reaches simulated runs only through the engine.Observer hook
// and the loadgen OnComplete callback (both defined outside obs, so
// accepting them needs no obs import), which the golden tests run nil;
// everything else exports post-hoc from a finished trace.Log.
var ObsDeterminism = &Analyzer{
	Name: "obsdeterminism",
	Doc:  "forbid internal/obs and internal/obs/span references inside golden-determinism packages",
	Run:  runObsDeterminism,
}

const obsPath = "e2ebatch/internal/obs"

func runObsDeterminism(p *Pass) {
	path := p.Pkg.Path()
	if !pathIsOneOf(path, goldenPackages...) {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if ip, err := strconv.Unquote(imp.Path.Value); err == nil && pathIsOneOf(ip, obsPath) {
				p.Reportf(imp.Pos(),
					"import of %s in golden-determinism package %s: telemetry may only enter through an engine.Observer hook",
					ip, path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[id]
			// The qualifier ident ("obs" in obs.NewRegistry) resolves to a
			// PkgName owned by the importing package, so only the selected
			// object itself matches here — one finding per use, not two.
			if obj == nil || obj.Pkg() == nil || !pathIsOneOf(obj.Pkg().Path(), obsPath) {
				return true
			}
			p.Reportf(id.Pos(),
				"use of %s.%s in golden-determinism package %s: obs must stay behind the engine.Observer seam so golden figure output cannot be perturbed",
				obj.Pkg().Path(), obj.Name(), path)
			return true
		})
	}
}
