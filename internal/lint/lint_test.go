package lint

import (
	"strings"
	"testing"
)

func TestAnalyzerRegistry(t *testing.T) {
	as := Analyzers()
	if len(as) != 12 {
		t.Fatalf("suite has %d analyzers, want 12 (locksafety, detrand, wallclock, snapshotpair, wiresize, mutexhold, enginewiring, obsdeterminism, hotpath, escapes, pertickerconn, spanfinish)", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v is missing a name or doc", a)
		}
		if (a.Run == nil) == (a.RunModule == nil) {
			t.Errorf("analyzer %q must set exactly one of Run and RunModule", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestSuiteCleanOnTree is the tier-1 contract: the full analyzer set over
// every module package reports nothing. A finding here means either a real
// invariant violation slipped in or an analyzer grew a false positive —
// both block the build by design.
func TestSuiteCleanOnTree(t *testing.T) {
	pkgs, err := sharedLoader(t).Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	// One CheckPackages call, not one per package: the module-level analyzers
	// (hotpath, escapes) must see the whole package set so cross-package
	// callee edges resolve.
	for _, d := range CheckPackages(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}

// TestIgnoreDirectives covers the escape hatch end to end: justified
// directives suppress, unjustified or unknown ones are findings themselves
// and suppress nothing.
func TestIgnoreDirectivesSuppress(t *testing.T) {
	pkg, err := sharedLoader(t).LoadDir("testdata/src/ignore")
	if err != nil {
		t.Fatal(err)
	}
	if diags := Check(pkg, Analyzers()); len(diags) != 0 {
		t.Fatalf("justified ignores should suppress everything, got %v", diags)
	}
}

func TestBadIgnoreDirectives(t *testing.T) {
	pkg, err := sharedLoader(t).LoadDir("testdata/src/badignore")
	if err != nil {
		t.Fatal(err)
	}
	diags := Check(pkg, Analyzers())
	var missingReason, unknownName, detrandFindings int
	for _, d := range diags {
		switch {
		case d.Analyzer == "directive" && strings.Contains(d.Message, "missing its reason"):
			missingReason++
		case d.Analyzer == "directive" && strings.Contains(d.Message, "unknown analyzer"):
			unknownName++
		case d.Analyzer == "detrand":
			detrandFindings++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if missingReason != 1 || unknownName != 1 {
		t.Errorf("directive findings: missing-reason=%d unknown-name=%d, want 1 and 1 (all: %v)",
			missingReason, unknownName, diags)
	}
	if detrandFindings != 2 {
		t.Errorf("broken directives must not suppress: got %d detrand findings, want 2 (all: %v)",
			detrandFindings, diags)
	}
}
