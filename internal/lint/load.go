package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("testdata/<dir>" for loose directories)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// loose marks a directory loaded outside the go tool's package graph
	// (LoadDir testdata); moduleDir is the module root it resolved
	// against. The escapes analyzer uses both to rebuild the package with
	// the real compiler: loose packages compile by directory, module
	// packages by import path.
	loose     bool
	moduleDir string
}

// A Loader resolves and type-checks packages using the go toolchain's build
// cache for dependency export data, so the suite needs nothing beyond the
// standard library: one `go list -export -deps -json` run compiles (or
// reuses) every dependency and tells us where its export data lives, and
// go/types does the rest from source.
//
// Only non-test GoFiles are analyzed. Tests deliberately use wall clocks,
// ad-hoc RNGs and cross-tracker fixtures to provoke the very conditions the
// analyzers forbid in production code.
type Loader struct {
	ModuleDir string // module root; "" means the module containing the cwd

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	listed  []*listPackage    // module packages from the last Load call
	imp     types.Importer
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
}

// NewLoader returns a loader rooted at the module containing dir (or the
// current directory when dir is empty).
func NewLoader(dir string) (*Loader, error) {
	out, err := goTool(dir, "list", "-m", "-f", "{{.Dir}}")
	if err != nil {
		return nil, fmt.Errorf("lint: locating module root: %w", err)
	}
	root := strings.TrimSpace(string(out))
	if root == "" {
		return nil, fmt.Errorf("lint: no module found from %q", dir)
	}
	return &Loader{ModuleDir: root, fset: token.NewFileSet()}, nil
}

// Load lists patterns (e.g. "./..."), builds the export-data map for the
// full dependency closure, and returns the matched module packages
// type-checked from source in dependency-safe order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if err := l.list(patterns); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range l.listed {
		if lp.Standard || lp.Module == nil || len(lp.GoFiles) == 0 {
			continue
		}
		match := false
		for _, pat := range patterns {
			if matchesPattern(lp, pat, l.ModuleDir) {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, absJoin(lp.Dir, lp.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks every non-test .go file in dir as one loose
// package — the entry point for analyzer testdata, which lives in
// `testdata/` directories the go tool refuses to enumerate. Imports resolve
// against the module's dependency closure, so testdata may import any
// package the module itself (transitively) uses.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	return l.LoadDirAs(dir, "")
}

// LoadDirAs is LoadDir with an assumed import path, letting golden tests
// exercise package-scoped rules (e.g. wallclock's restricted-package list)
// from a testdata directory standing in for the real package.
func (l *Loader) LoadDirAs(dir, asPath string) (*Package, error) {
	if l.exports == nil {
		if err := l.list([]string{"./..."}); err != nil {
			return nil, err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	if asPath == "" {
		asPath = "testdata/" + filepath.Base(dir)
	}
	pkg, err := l.check(asPath, dir, files)
	if err != nil {
		return nil, err
	}
	pkg.loose = true
	return pkg, nil
}

// list runs go list once and caches the export map plus the module packages.
func (l *Loader) list(patterns []string) error {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Module"}, patterns...)
	out, err := goTool(l.ModuleDir, args...)
	if err != nil {
		return fmt.Errorf("lint: go list: %w", err)
	}
	l.exports = map[string]string{}
	l.listed = nil
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if lp.Export != "" {
			l.exports[lp.ImportPath] = lp.Export
		}
		l.listed = append(l.listed, &lp)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (is it imported by the module?)", path)
		}
		return os.Open(f)
	}
	l.imp = importer.ForCompiler(l.fset, "gc", lookup)
	return nil
}

// check parses files and type-checks them as package path.
func (l *Loader) check(path, dir string, files []string) (*Package, error) {
	var astFiles []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		astFiles = append(astFiles, af)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: astFiles,
		Types: tpkg, Info: info, moduleDir: l.ModuleDir}, nil
}

// matchesPattern reports whether a listed package (part of -deps output)
// was itself named by pattern, as opposed to being pulled in as a
// dependency.
func matchesPattern(lp *listPackage, pattern, moduleDir string) bool {
	if pattern == lp.ImportPath {
		return true
	}
	base, recursive := strings.CutSuffix(pattern, "/...")
	if base == "." || base == "./" {
		base = ""
	}
	base = strings.TrimPrefix(base, "./")
	dir := filepath.Join(moduleDir, filepath.FromSlash(base))
	if recursive {
		rel, err := filepath.Rel(dir, lp.Dir)
		return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
	}
	return lp.Dir == dir
}

func absJoin(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

func goTool(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v: %s", strings.Join(args, " "), err, stderr.Bytes())
	}
	return out, nil
}
