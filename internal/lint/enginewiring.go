package lint

import (
	"go/ast"
	"go/types"
)

// EngineWiring enforces the PR-4 single-loop contract: the estimate→policy
// control tick lives in internal/engine and nowhere else. Before the engine
// existed, four hand-wired copies of the loop had already diverged (the
// real-TCP path missed degraded-tick routing, multiconn missed the cork
// restore), so the rule is mechanical now:
//
//   - core.Estimator.Update / core.SharedEstimator.Update,
//   - any Observe/ObserveDegraded method returning a policy.Mode (the
//     ε-greedy and UCB togglers, and any controller interface wrapping
//     them — wrapping the toggler in a local interface must not launder
//     the call), and
//   - policy.AIMD.Observe
//
// may be called only from internal/engine (and from core/policy
// themselves). Everything else under internal/ and cmd/ must construct an
// engine.Endpoint and let it run the tick. Examples stay out of scope —
// pedagogical code may show the raw pieces — and //lint:ignore
// e2elint/enginewiring remains the justified escape hatch.
var EngineWiring = &Analyzer{
	Name: "enginewiring",
	Doc:  "forbid estimator updates and toggler decisions outside internal/engine",
	Run:  runEngineWiring,
}

// engineWiringScope is where the rule applies; engineWiringAllowed carves
// out the loop's own home plus the packages defining the restricted
// methods.
var (
	engineWiringScope   = []string{"e2ebatch/internal", "e2ebatch/cmd"}
	engineWiringAllowed = []string{enginePath, corePath, policyPath}
)

func runEngineWiring(p *Pass) {
	path := p.Pkg.Path()
	if !pathIsOneOf(path, engineWiringScope...) || pathIsOneOf(path, engineWiringAllowed...) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, fn := methodRecv(p.TypesInfo, call)
			if fn == nil {
				return true
			}
			rt := p.TypesInfo.TypeOf(recv)
			switch fn.Name() {
			case "Update":
				if typeIs(rt, corePath, "Estimator") || typeIs(rt, corePath, "SharedEstimator") {
					p.Reportf(call.Pos(),
						"estimator update outside internal/engine: %s.Update must run inside the engine tick (engine.Endpoint)",
						renderExpr(recv))
				}
			case "Observe", "ObserveDegraded":
				if returnsPolicyMode(fn) {
					p.Reportf(call.Pos(),
						"batching decision outside internal/engine: %s.%s must be driven by the engine tick (engine.Endpoint)",
						renderExpr(recv), fn.Name())
				} else if fn.Name() == "Observe" && typeIs(rt, policyPath, "AIMD") {
					p.Reportf(call.Pos(),
						"batching decision outside internal/engine: %s.Observe (AIMD) must be driven by the engine tick (engine.AIMDPolicy)",
						renderExpr(recv))
				}
			}
			return true
		})
	}
}

// returnsPolicyMode reports whether fn's signature returns exactly one
// policy.Mode — the shape of every mode-deciding Observe variant, concrete
// or behind an interface.
func returnsPolicyMode(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	return sig.Results().Len() == 1 && typeIs(sig.Results().At(0).Type(), policyPath, "Mode")
}
