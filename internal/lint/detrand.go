package lint

import (
	"go/ast"
	"go/types"
)

// DetRand protects the per-run seeded determinism contract: every RNG must
// be an explicitly seeded *rand.Rand threaded through constructors (each
// run's stream derived from its own spec.Seed), never the process-global
// math/rand source and never a wall-clock seed. Three shapes are flagged:
//
//  1. calls to math/rand's top-level functions that draw from the shared
//     global source (rand.Intn, rand.Float64, rand.Seed, rand.Shuffle, ...);
//  2. package-level variables of type *rand.Rand or rand.Source — a global
//     stream shared across runs reintroduces cross-run coupling even when
//     seeded;
//  3. rand.New / rand.NewSource seeded from time.Now (run-to-run
//     nondeterminism by construction).
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global or wall-clock-seeded math/rand state",
	Run:  runDetRand,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource, NewZipf) are the
// sanctioned alternative and are absent.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "Perm": true, "Shuffle": true,
	"Read": true, "ExpFloat64": true, "NormFloat64": true,
}

func runDetRand(p *Pass) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := p.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if _, isVar := obj.(*types.Var); !isVar {
						continue
					}
					if typeIs(obj.Type(), "math/rand", "Rand") || isRandSource(obj.Type()) {
						p.Reportf(name.Pos(),
							"package-level RNG %s shares one stream across runs; thread a per-run seeded *rand.Rand instead",
							name.Name)
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math/rand" {
				return true
			}
			if fn, ok := obj.(*types.Func); !ok || fn.Type().(*types.Signature).Recv() != nil {
				// Methods on an explicit *rand.Rand / Source are exactly
				// what the contract asks for.
				return true
			}
			switch {
			case globalRandFuncs[obj.Name()]:
				p.Reportf(call.Pos(),
					"rand.%s draws from the process-global source; use a per-run seeded *rand.Rand",
					obj.Name())
			case obj.Name() == "New" || obj.Name() == "NewSource":
				if tn := wallClockSeed(p.TypesInfo, call); tn != nil {
					p.Reportf(call.Pos(),
						"rand.%s seeded from time.Now is nondeterministic across runs; thread an explicit seed",
						obj.Name())
				}
			}
			return true
		})
	}
}

// isRandSource reports whether t is math/rand.Source or Source64.
func isRandSource(t types.Type) bool {
	return typeIs(t, "math/rand", "Source") || typeIs(t, "math/rand", "Source64")
}

// wallClockSeed returns the time.Now call feeding a rand constructor's
// arguments, if any. Nested rand constructors are skipped — they produce
// their own diagnostic, so rand.New(rand.NewSource(time.Now()...)) is
// reported once, at the NewSource.
func wallClockSeed(info *types.Info, call *ast.CallExpr) *ast.CallExpr {
	var found *ast.CallExpr
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeObj(info, c)
			if objIs(callee, "math/rand", "New") || objIs(callee, "math/rand", "NewSource") {
				return false
			}
			if objIs(callee, "time", "Now") {
				found = c
				return false
			}
			return true
		})
	}
	return found
}
