// Package locksafety is golden testdata for e2elint/locksafety.
package locksafety

import (
	"sync"

	"e2ebatch/internal/core"
	"e2ebatch/internal/hints"
	"e2ebatch/internal/qstate"
)

// Case 1: lock-free state touched inside a spawned goroutine.
func insideGoroutine(st *qstate.State, est *core.Estimator) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		st.Track(0, 1)            // want "lock-free State.Track called from a spawned goroutine"
		est.Update(core.Sample{}) // want "lock-free Estimator.Update called from a spawned goroutine"
		var local qstate.State    // ok below: goroutine-local value
		local.Track(0, 1)
	}()
	wg.Wait()
}

// Case 2: a method that runs as a goroutine (`go w.run()` below).
type worker struct {
	est core.Estimator
	he  *hints.Estimator
}

func (w *worker) run() {
	w.est.Update(core.Sample{}) // want "lock-free Estimator.Update in run, which runs as a goroutine"
	w.he.Sample()               // want "lock-free Estimator.Sample in run, which runs as a goroutine"
}

func (w *worker) runLocal() {
	var st qstate.State
	st.Track(0, 1) // ok: local to the goroutine's own frame
}

func start(w *worker) {
	go w.run()
	go w.runLocal()
}

// Case 3: a value shared between the spawner and its goroutine.
func captured() {
	var st qstate.State
	done := make(chan struct{})
	go func() {
		st.Track(0, 1) // want "lock-free State.Track called from a spawned goroutine"
		close(done)
	}()
	st.Track(0, 2) // want "lock-free State.Track on st, which a goroutine spawned in captured also captures"
	<-done
}

// The mutex-guarded counterparts are always fine.
func safeEverywhere(tr *qstate.Tracker, se *core.SharedEstimator, ht *hints.Tracker) {
	go func() {
		tr.Track(0, 1)
		se.Update(core.Sample{})
		ht.Create(1)
	}()
	tr.Track(0, 1)
}

// No goroutines anywhere: lock-free types are exactly what the hot path
// should use.
func singleGoroutine() {
	var st qstate.State
	var est core.Estimator
	st.Track(0, 1)
	est.Update(core.Sample{})
}
