// Package obsdeterminism is golden testdata for e2elint/obsdeterminism;
// the test loads it under the import path of a golden-determinism package
// (internal/figures) and again under an unrestricted path, expecting
// silence there.
package obsdeterminism

import (
	"e2ebatch/internal/engine"
	"e2ebatch/internal/obs"      // want "import of e2ebatch/internal/obs in golden-determinism package"
	"e2ebatch/internal/obs/span" // want "import of e2ebatch/internal/obs/span in golden-determinism package"
	"e2ebatch/internal/qstate"
)

// registryTraffic is the core violation: counting and timing from inside a
// golden-pinned run perturbs what the goldens pin.
func registryTraffic() {
	reg := obs.NewRegistry()                         // want "use of e2ebatch/internal/obs.NewRegistry"
	ticks := reg.Counter("sim_ticks_total", "ticks") // want "use of e2ebatch/internal/obs.Counter"
	ticks.Inc()                                      // want "use of e2ebatch/internal/obs.Inc"
	reg.Gauge("sim_depth", "queue depth").Set(3)     // want "use of e2ebatch/internal/obs.Gauge" "use of e2ebatch/internal/obs.Set"
	_ = reg.Latencies("sim_latency_seconds", "lat")  // want "use of e2ebatch/internal/obs.Latencies"
}

// ringTraffic: pushing decision records from simulated code is just as
// ordering-sensitive as metric writes.
func ringTraffic() {
	ring := obs.NewRing(8)         // want "use of e2ebatch/internal/obs.NewRing"
	ring.Push(&obs.DecisionRecord{ // want "use of e2ebatch/internal/obs.Push" "use of e2ebatch/internal/obs.DecisionRecord"
		Endpoint: "sim", // want "use of e2ebatch/internal/obs.Endpoint"
	})
}

// typeReferences: even holding an obs type in a struct couples the golden
// path to the telemetry plane.
type instrumented struct {
	reg *obs.Registry // want "use of e2ebatch/internal/obs.Registry"
}

// observerHook is the sanctioned seam: engine.Observer is defined in
// internal/engine, so accepting, storing and invoking one references
// nothing in obs and stays silent.
type observerHook struct {
	o engine.Observer
}

func (h *observerHook) tick(now qstate.Time, r engine.TickResult) {
	if h.o != nil {
		h.o.ObserveTick(now, r)
	}
}

// spanTraffic: the span tracer is part of the obs subtree — a Begin/Finish
// on a simulated hot path is a side channel exactly like a counter
// increment, so golden packages may not reference it either. The sanctioned
// seam is the loadgen OnComplete callback, which needs no span import.
func spanTraffic() {
	tr := span.New(span.Config{SampleEvery: 8}) // want "use of e2ebatch/internal/obs/span.New" "use of e2ebatch/internal/obs/span.Config" "use of e2ebatch/internal/obs/span.SampleEvery"
	var sp span.Span                            // want "use of e2ebatch/internal/obs/span.Span"
	tr.Begin(&sp, 0, 0, 1, 10)                  // want "use of e2ebatch/internal/obs/span.Begin"
	tr.Finish(&sp, 20)                          // want "use of e2ebatch/internal/obs/span.Finish"
}
