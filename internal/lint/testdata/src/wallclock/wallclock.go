// Package wallclock is golden testdata for e2elint/wallclock; the test
// loads it under the import path of a simulated-time package.
package wallclock

import "time"

func reads() time.Duration {
	t := time.Now()    // want "wall-clock time.Now in simulated-time package"
	d := time.Since(t) // want "wall-clock time.Since in simulated-time package"
	d += time.Until(t) // want "wall-clock time.Until in simulated-time package"
	return d + sleepless()
}

func sleepless() time.Duration {
	// Durations, arithmetic and formatting on time values are all fine:
	// only reading the host clock is forbidden here.
	return 5 * time.Millisecond
}
