// Package wallclock_ok is golden testdata for e2elint/wallclock: the same
// wall-clock reads are legal outside the simulated-time packages, so a load
// under the default (unrestricted) import path must produce no findings.
package wallclock_ok

import "time"

func reads() time.Duration {
	return time.Since(time.Now())
}
