// Package pertickerconn exercises the per-connection-timer rule: loaded by
// the golden test under the path e2ebatch/internal/realtcp (and again as
// e2ebatch/internal/shard), where the rule applies.
package pertickerconn

import "time"

type conn struct{ closed chan struct{} }

// handle has the per-connection handler shape the rule exists for: every
// runtime timer constructor is flagged regardless of goroutine context.
func handle(c *conn) {
	tk := time.NewTicker(time.Millisecond) // want "time\\.NewTicker in handle: per-connection timers belong on the shard wheel"
	defer tk.Stop()
	tm := time.NewTimer(time.Second) // want "time\\.NewTimer in handle"
	defer tm.Stop()
	ch := time.Tick(time.Second)           // want "time\\.Tick in handle"
	time.AfterFunc(time.Second, func() {}) // want "time\\.AfterFunc in handle"
	_ = ch
	<-c.closed
}

// serve spawns a goroutine per connection; blocking waits inside them are
// the pattern that topples at 50k connections.
func serve(cs []*conn) {
	for _, c := range cs {
		go func(c *conn) {
			time.Sleep(time.Millisecond) // want "time\\.Sleep on a goroutine spawned in serve"
			select {
			case <-c.closed:
			case <-time.After(time.Second): // want "time\\.After on a goroutine spawned in serve"
			}
		}(c)
		go readLoop(c)
	}
}

// readLoop is a go-statement target (spawned in serve), so its waits are
// per-connection waits.
func readLoop(c *conn) {
	time.Sleep(time.Millisecond) // want "time\\.Sleep in readLoop, which runs as a goroutine"
	<-c.closed
}

// pace runs on the caller's goroutine: pacing sleeps are legitimate there
// (RunLoad's send loop, Fleet.Run's hold window).
func pace() {
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
}

// driver is the one legitimate ticker shape — a per-shard loop driver —
// and shows the escape hatch with its mandatory justification.
func driver(stop chan struct{}) {
	//lint:ignore e2elint/pertickerconn one driver ticker per shard is the design: the wheel multiplexes every per-connection schedule onto it
	tk := time.NewTicker(time.Millisecond)
	defer tk.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tk.C:
		}
	}
}
