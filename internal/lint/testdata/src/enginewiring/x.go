// Package enginewiring is golden testdata for e2elint/enginewiring; the
// test loads it under the import path of a monitored package (and again
// under internal/engine and an unmonitored path, expecting silence).
package enginewiring

import (
	"time"

	"e2ebatch/internal/core"
	"e2ebatch/internal/policy"
)

// controller mirrors the local-interface wrapping of the toggler the old
// figures runner used; routing the call through it must not launder it.
type controller interface {
	Observe(latency time.Duration, throughput float64, valid bool) policy.Mode
	ObserveDegraded() policy.Mode
	Mode() policy.Mode
	Stats() policy.TogglerStats
}

func estimatorUpdates(est *core.Estimator, shared *core.SharedEstimator, s core.Sample) {
	est.Update(s)    // want "estimator update outside internal/engine"
	shared.Update(s) // want "estimator update outside internal/engine"
	est.Reset()      // ok: resetting is not running the loop
	_ = est.Estimates()
}

func togglerDecisions(tog *policy.Toggler, ucb *policy.UCBToggler, ctl controller) {
	tog.Observe(time.Millisecond, 1000, true) // want "batching decision outside internal/engine"
	tog.ObserveDegraded()                     // want "batching decision outside internal/engine"
	ucb.Observe(time.Millisecond, 1000, true) // want "batching decision outside internal/engine"
	ctl.Observe(time.Millisecond, 1000, true) // want "batching decision outside internal/engine"
	ctl.ObserveDegraded()                     // want "batching decision outside internal/engine"
	_ = tog.Mode()                            // ok: reading the mode is not deciding it
	_ = tog.Stats()
}

func aimdDecisions(a *policy.AIMD) {
	a.Observe(true) // want "batching decision outside internal/engine"
	_ = a.Limit()   // ok: reads
	_ = a.AtFloor()
}

// observer has an Observe that returns no policy.Mode — not a batching
// decision, so not this analyzer's business.
type observer struct{}

func (observer) Observe(v float64) float64 { return v }

func unrelatedObserve(o observer) {
	_ = o.Observe(1) // ok: does not return a policy.Mode
}

func justified(tog *policy.Toggler) {
	//lint:ignore e2elint/enginewiring exercising the policy surface directly in a calibration probe
	tog.Observe(time.Millisecond, 1000, true)
}
