// Package badignore is testdata for directive verification: a reasonless
// directive and an unknown analyzer name are both findings, and neither
// suppresses anything.
package badignore

import "math/rand"

func missingReason() int {
	//lint:ignore e2elint/detrand
	return rand.Intn(10)
}

func unknownAnalyzer() int {
	//lint:ignore e2elint/nosuchthing because I said so
	return rand.Intn(10)
}
