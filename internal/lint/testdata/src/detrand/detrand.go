// Package detrand is golden testdata for e2elint/detrand.
package detrand

import (
	"math/rand"
	"time"
)

var globalRNG = rand.New(rand.NewSource(1)) // want "package-level RNG globalRNG shares one stream"

var globalSrc rand.Source // want "package-level RNG globalSrc shares one stream"

func globals() int {
	rand.Seed(42)             // want "rand.Seed draws from the process-global source"
	if rand.Float64() < 0.5 { // want "rand.Float64 draws from the process-global source"
		return rand.Intn(10) // want "rand.Intn draws from the process-global source"
	}
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the process-global source"
	return 0
}

func wallClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.NewSource seeded from time.Now is nondeterministic"
}

func perRunSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: explicit per-run seed
	return rng.Intn(10)                   // ok: method on a local stream
}
