// Package escapes is golden testdata for e2elint/escapes: the compiler's
// escape analysis is the oracle, so each want line matches a -gcflags=-m
// diagnostic rather than an AST pattern. "moved to heap" lands on the
// variable's declaration line; "escapes to heap" on the boxing expression.
package escapes

var sink *int

var iface any

//e2e:hotpath
func Leak() {
	x := 42 // want "compiler escape analysis: moved to heap: x in //e2e:hotpath function Leak"
	sink = &x
	_ = x
}

//e2e:hotpath
func Box(v int) {
	iface = v // want "compiler escape analysis: v escapes to heap in //e2e:hotpath function Box"
}

//e2e:hotpath
func Clean(v int) int {
	y := v * 2
	return y + 1
}

// coldLeak escapes just like Leak but carries no annotation, so the
// analyzer must stay silent about it.
func coldLeak() *int {
	z := 7
	return &z
}

//e2e:hotpath
func Justified() {
	//lint:ignore e2elint/escapes one-time registration, off the tick
	w := 9
	sink = &w
}
