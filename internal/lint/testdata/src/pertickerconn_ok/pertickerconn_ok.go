// Package pertickerconn_ok carries the same timer patterns as the
// pertickerconn golden package but is loaded under its own (unscoped)
// import path: outside internal/realtcp and internal/shard the rule stays
// silent — sim drivers, figures, and cmd binaries use runtime timers
// freely.
package pertickerconn_ok

import "time"

func handle(closed chan struct{}) {
	tk := time.NewTicker(time.Millisecond)
	defer tk.Stop()
	go func() {
		time.Sleep(time.Millisecond)
	}()
	select {
	case <-closed:
	case <-time.After(time.Second):
	}
}
