// Package snapshotpair is golden testdata for e2elint/snapshotpair.
package snapshotpair

import "e2ebatch/internal/qstate"

func mixedDirect(now qstate.Time) {
	var a, b qstate.State
	_ = qstate.GetAvgs(a.Snapshot(now), b.Snapshot(now)) // want "GetAvgs arguments come from different trackers"
}

func mixedViaVars(now qstate.Time) {
	var a, b qstate.State
	prev := a.Snapshot(now)
	cur := b.Snapshot(now + 1000)
	_ = qstate.GetAvgs(prev, cur) // want "GetAvgs arguments come from different trackers"
}

func mixedWire(now qstate.Time) {
	var a, b qstate.State
	w1 := qstate.ToWire(a.Snapshot(now))
	w2 := qstate.ToWire(b.Snapshot(now + 1000))
	_ = qstate.WireAvgs(w1, w2) // want "WireAvgs arguments come from different trackers"
}

func mixedTrackers(now qstate.Time) {
	t1 := qstate.NewTracker(0)
	t2 := qstate.NewTracker(0)
	_ = qstate.GetAvgs(t1.Snapshot(now), t2.Peek()) // want "GetAvgs arguments come from different trackers"
}

func samePair(now qstate.Time) {
	var a qstate.State
	prev := a.Snapshot(now)
	cur := a.Snapshot(now + 1000)
	_ = qstate.GetAvgs(prev, cur) // ok: successive snapshots of one queue
	_ = qstate.WireAvgs(qstate.ToWire(prev), qstate.ToWire(cur))
}

// Origins that cross a function boundary are unknown, and unknown never
// flags: the analyzer only reports provable mismatches.
func unknownOrigins(p1, p2 qstate.Snapshot) {
	_ = qstate.GetAvgs(p1, p2)
}

// Reassignment makes the origin flow-sensitive; the analyzer stays silent.
func reassigned(now qstate.Time) {
	var a, b qstate.State
	s := a.Snapshot(now)
	s = b.Snapshot(now)
	_ = qstate.GetAvgs(s, b.Snapshot(now+1))
}
