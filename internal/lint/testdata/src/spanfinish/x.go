// Package spanfinish is golden testdata for e2elint/spanfinish: every
// span.Tracer Begin must reach a Finish or Abort on every exit path.
package spanfinish

import (
	"e2ebatch/internal/obs/span"
)

// leakAtEnd is the core violation: a begun span that falls off the end of
// the function is never pushed to the ring and never audited.
func leakAtEnd(tr *span.Tracer) {
	var sp span.Span
	tr.Begin(&sp, 0, 0, 1, 100)
	tr.MarkSend(&sp, 150)
} // want "span sp begun at line 13 is not finished on this function end path"

// leakOnEarlyReturn: the happy path finishes, the error path leaks.
func leakOnEarlyReturn(tr *span.Tracer, fail bool) {
	var sp span.Span
	tr.Begin(&sp, 0, 0, 2, 100)
	if fail {
		return // want "span sp begun at line 20 is not finished on this return path"
	}
	tr.Finish(&sp, 200)
}

// abortClosesErrorPath: Abort is as good as Finish — the span is published
// marked rather than lost.
func abortClosesErrorPath(tr *span.Tracer, fail bool) {
	var sp span.Span
	tr.Begin(&sp, 0, 0, 3, 100)
	if fail {
		tr.Abort(&sp, 150)
		return
	}
	tr.Finish(&sp, 200)
}

// deferredFinishCoversEveryExit: a deferred close counts for the whole
// function, early returns included.
func deferredFinishCoversEveryExit(tr *span.Tracer, fail bool) {
	var sp span.Span
	tr.Begin(&sp, 0, 0, 4, 100)
	defer tr.Finish(&sp, 200)
	if fail {
		return
	}
	tr.MarkSend(&sp, 150)
}

// closureIsItsOwnScope: the completion callback pattern — the closure
// begins and finishes the shared scratch span inside its own body, and the
// enclosing function neither opens nor leaks anything.
func closureIsItsOwnScope(tr *span.Tracer) func(uint64, int64, int64) {
	var sp span.Span
	return func(reqID uint64, schedNs, doneNs int64) {
		if !tr.Sampled(reqID) {
			return
		}
		tr.Begin(&sp, 0, 0, reqID, schedNs)
		tr.Finish(&sp, doneNs)
	}
}

// leakInsideClosure: the same callback leaking on its sampled path is
// caught inside the literal's own scope.
func leakInsideClosure(tr *span.Tracer) func(uint64, int64, int64) {
	var sp span.Span
	return func(reqID uint64, schedNs, doneNs int64) {
		if !tr.Sampled(reqID) {
			return
		}
		tr.Begin(&sp, 0, 0, reqID, schedNs)
		tr.MarkSend(&sp, doneNs)
	} // want "span sp begun at line 73 is not finished on this function end path"
}

// handoffClosesFailOpen: passing the span to a helper moves ownership
// beyond the lexical scan — no finding, even though nothing here closes it.
func handoffClosesFailOpen(tr *span.Tracer, sink func(*span.Span)) {
	var sp span.Span
	tr.Begin(&sp, 0, 0, 5, 100)
	sink(&sp)
}

// branchLocalLifecycles: each branch owns its span's full lifecycle; the
// scan threads the open set per block, so neither branch pollutes the
// other.
func branchLocalLifecycles(tr *span.Tracer, fast bool) {
	var sp span.Span
	if fast {
		tr.Begin(&sp, 0, 0, 6, 100)
		tr.Finish(&sp, 150)
	} else {
		tr.Begin(&sp, 0, 0, 7, 100)
		tr.Abort(&sp, 300)
	}
}

// loopReuse: the scratch span is begun and finished every iteration — the
// steady-state hot-loop shape, clean.
func loopReuse(tr *span.Tracer, n int) {
	var sp span.Span
	for i := 0; i < n; i++ {
		id := uint64(i)
		if !tr.Sampled(id) {
			continue
		}
		tr.Begin(&sp, 0, 0, id, int64(i))
		tr.Finish(&sp, int64(i)+100)
	}
}
