// Package wiresize is golden testdata for e2elint/wiresize.
package wiresize

import "e2ebatch/internal/qstate"

func unchecked(buf []byte) (qstate.WireState, error) {
	return qstate.DecodeWire(buf) // want "DecodeWire ignores trailing bytes"
}

func uncheckedSubslice(buf []byte) (qstate.WireState, error) {
	return qstate.DecodeWire(buf[:36]) // want "DecodeWire ignores trailing bytes"
}

func exact(buf []byte) (qstate.WireState, error) {
	return qstate.DecodeWireExact(buf) // ok: rejects trailing bytes itself
}

func exactArray() (qstate.WireState, error) {
	var buf [qstate.WireSize]byte
	return qstate.DecodeWire(buf[:]) // ok: length pinned by the array type
}

func ignored(buf []byte) (qstate.WireState, error) {
	//lint:ignore e2elint/wiresize this parser frames payloads upstream
	return qstate.DecodeWire(buf)
}
