// Package wiresize is golden testdata for e2elint/wiresize.
package wiresize

import "e2ebatch/internal/qstate"

func unchecked(buf []byte) (qstate.WireState, error) {
	return qstate.DecodeWire(buf) // want "DecodeWire ignores trailing bytes"
}

func uncheckedSubslice(buf []byte) (qstate.WireState, error) {
	return qstate.DecodeWire(buf[:36]) // want "DecodeWire ignores trailing bytes"
}

func exact(buf []byte) (qstate.WireState, error) {
	return qstate.DecodeWireExact(buf) // ok: rejects trailing bytes itself
}

func exactArray() (qstate.WireState, error) {
	var buf [qstate.WireSize]byte
	return qstate.DecodeWire(buf[:]) // ok: length pinned by the array type
}

func ignored(buf []byte) (qstate.WireState, error) {
	//lint:ignore e2elint/wiresize this parser frames payloads upstream
	return qstate.DecodeWire(buf)
}

func frameUnchecked(buf []byte) (qstate.WireFrame, error) {
	return qstate.DecodeFrame(buf) // want "DecodeFrame decodes a prefix"
}

func frameSubslice(buf []byte) (qstate.WireFrame, error) {
	return qstate.DecodeFrame(buf[:qstate.FrameV2Size]) // want "DecodeFrame decodes a prefix"
}

func frameExact(buf []byte) (qstate.WireFrame, error) {
	return qstate.DecodeFrameExact(buf) // ok: rejects trailing bytes itself
}

func frameV1Array() (qstate.WireFrame, error) {
	var buf [qstate.WireSize]byte
	return qstate.DecodeFrame(buf[:]) // ok: length pinned to one v1 frame
}

func frameV2Array() (qstate.WireFrame, error) {
	var buf [qstate.FrameV2Size]byte
	return qstate.DecodeFrame(buf[:]) // ok: length pinned to one v2 frame
}

func frameIgnored(buf []byte) (qstate.WireFrame, error) {
	//lint:ignore e2elint/wiresize this parser frames payloads upstream
	return qstate.DecodeFrame(buf)
}
