// Package mutexhold is golden testdata for e2elint/mutexhold; the test
// loads it under the import path of a monitored package.
package mutexhold

import (
	"fmt"
	"net"
	"sync"
	"time"
)

type ctrl struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	n    int
}

func (c *ctrl) pairedLockUnlock() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking call to time.Sleep while mutex c.mu is held"
	fmt.Println(c.n)             // want "blocking call to fmt.Println while mutex c.mu is held"
	c.mu.Unlock()
	time.Sleep(time.Millisecond) // ok: released
}

func (c *ctrl) deferredUnlock(buf []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Read(buf) // want "blocking call to net method Read while mutex c.mu is held"
}

func (c *ctrl) channelOps(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch <- c.n  // want "channel send while mutex c.mu is held"
	c.n = <-ch // want "channel receive while mutex c.mu is held"
}

func (c *ctrl) insideControlFlow(bufs [][]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, buf := range bufs {
		if len(buf) > 0 {
			if _, err := c.conn.Write(buf); err != nil { // want "blocking call to net method Write while mutex c.mu is held"
				return err
			}
		}
	}
	return nil
}

func (c *ctrl) rlockToo() {
	c.rw.RLock()
	fmt.Println(c.n) // want "blocking call to fmt.Println while mutex c.rw is held"
	c.rw.RUnlock()
}

func (c *ctrl) branchScoped(quick bool) {
	if quick {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	time.Sleep(time.Millisecond) // ok: the branch released its lock
}

func (c *ctrl) readOutsideLock(buf []byte) (int, error) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	_ = n
	return c.conn.Read(buf) // ok: released before the read
}

func (c *ctrl) closureBuiltUnderLock() func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() {
		time.Sleep(time.Millisecond) // ok: runs after the critical section
	}
}

func (c *ctrl) nonBlockingWork() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = c.n*2 + len(fmt.Sprintf("%d", c.n)) // ok: Sprintf allocates, never blocks
}
