// Package hotpath is golden testdata for e2elint/hotpath: one annotated
// tick function exercising every forbidden construct, callees reached
// through the traversal, and the cold code the analyzer must leave alone.
package hotpath

import (
	"errors"
	"fmt"
)

type state struct {
	buf []int
	out [4]int
	n   int
}

var global int

func consume(v any) { _ = v }

//e2e:hotpath
func (s *state) Tick(now int64) int {
	defer s.unlock()                // want "defer in //e2e:hotpath function \\(\\*state\\).Tick"
	m := map[string]int{"tick": 1}  // want "map literal in //e2e:hotpath function \\(\\*state\\).Tick"
	xs := []int{1, 2}               // want "slice literal in"
	b := make([]byte, 8)            // want "make in"
	s.buf = append(s.buf, int(now)) // want "append in"
	consume(now)                    // want "interface boxing in //e2e:hotpath function \\(\\*state\\).Tick: int64 converts to any"
	consume(&s.out)                 // ok: pointer-shaped, stores in the interface word
	consume(nil)                    // ok: untyped nil
	_ = fmt.Sprintf("%d", now)      // want "call to fmt.Sprintf in"
	_ = errors.New("tick")          // want "call to errors.New in"
	_ = []byte("hdr")               // want "string/\\[\\]byte conversion in"
	_ = string(b)                   // want "string/\\[\\]byte conversion in"
	if now < 0 {
		panic(fmt.Sprintf("bad now %d", now)) // ok: a panicking tick is already dead
	}
	f := func() { s.n = len(xs) } // want "closure captures local variables in"
	f()
	g := func() int { return global } // ok: package state is shared, not captured
	_ = g()
	a := [4]int{} // ok: array literals live on the stack
	_ = a
	_ = m
	helper(s)
	return s.depth2()
}

func (s *state) unlock() {} // reached via defer; clean

// helper is unannotated but reached from Tick, so the same rules apply.
func helper(s *state) {
	s.buf = append(s.buf, 1) // want "append in helper, on the hot path of //e2e:hotpath \\(\\*state\\).Tick"
}

// depth2 shows method callees are traversed too.
func (s *state) depth2() int {
	_ = fmt.Sprint(s.n) // want "call to fmt.Sprint in \\(\\*state\\).depth2, on the hot path of"
	return s.n
}

// cold uses every forbidden construct but is reachable from no annotated
// function, so none of it is the analyzer's business.
func cold() string {
	defer func() {}()
	m := map[string]int{}
	bs := append([]byte(nil), "cold"...)
	consume(len(m))
	return fmt.Sprintf("%s", string(bs))
}

//e2e:hotpath
func Justified() {
	//lint:ignore e2elint/hotpath startup-only formatting, measured free
	_ = fmt.Sprintf("suppressed")
}
