// Package ignore is golden testdata for the //lint:ignore escape hatch:
// every violation below carries a justified directive, so the suite must
// come back clean.
package ignore

import "math/rand"

func ownLine() int {
	//lint:ignore e2elint/detrand golden test: directive on its own line suppresses the next line
	return rand.Intn(10)
}

func trailing() int {
	return rand.Intn(10) //lint:ignore e2elint/detrand golden test: trailing directive suppresses its own line
}
