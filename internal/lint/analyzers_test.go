package lint

import (
	"testing"

	"e2ebatch/internal/qstate"
)

func TestDetRandGolden(t *testing.T) {
	runGolden(t, DetRand, "detrand")
}

func TestWallClockGoldenRestricted(t *testing.T) {
	// The testdata stands in for a simulated-time package.
	runGoldenAs(t, WallClock, "wallclock", "e2ebatch/internal/sim")
}

func TestWallClockGoldenUnrestricted(t *testing.T) {
	// The same reads under an unrestricted path produce nothing.
	runGolden(t, WallClock, "wallclock_ok")
}

func TestWireSizeGolden(t *testing.T) {
	runGolden(t, WireSize, "wiresize")
}

func TestWireSizeFrameConstMatchesCodec(t *testing.T) {
	// The analyzer pins the v2 frame size as a local constant (it cannot
	// import qstate into analyzed source); this guards it against codec
	// drift.
	if frameV2Size != qstate.FrameV2Size {
		t.Fatalf("lint frameV2Size = %d, qstate.FrameV2Size = %d", frameV2Size, qstate.FrameV2Size)
	}
}

func TestLockSafetyGolden(t *testing.T) {
	runGolden(t, LockSafety, "locksafety")
}

func TestSnapshotPairGolden(t *testing.T) {
	runGolden(t, SnapshotPair, "snapshotpair")
}

func TestMutexHoldGoldenRestricted(t *testing.T) {
	runGoldenAs(t, MutexHold, "mutexhold", "e2ebatch/internal/policy")
}

func TestEngineWiringGoldenRestricted(t *testing.T) {
	// The testdata stands in for any monitored internal package.
	runGoldenAs(t, EngineWiring, "enginewiring", "e2ebatch/internal/figures")
}

func TestEngineWiringGoldenEngineExempt(t *testing.T) {
	// The same calls inside internal/engine are the loop's own home.
	runExpectNoneAs(t, EngineWiring, "enginewiring", "e2ebatch/internal/engine")
}

func TestEngineWiringGoldenUnrestricted(t *testing.T) {
	// Outside internal/ and cmd/ (examples, external code) the rule does
	// not apply, so every want comment must go unmatched.
	runExpectNone(t, EngineWiring, "enginewiring")
}

func TestObsDeterminismGoldenRestricted(t *testing.T) {
	// The testdata stands in for a golden-determinism package.
	runGoldenAs(t, ObsDeterminism, "obsdeterminism", "e2ebatch/internal/figures")
}

func TestObsDeterminismGoldenUnrestricted(t *testing.T) {
	// The same code outside sim/tcpsim/figures (realtcp, cmd/, examples) is
	// exactly where obs is supposed to be used, so every want comment must
	// go unmatched.
	runExpectNone(t, ObsDeterminism, "obsdeterminism")
}

func TestPerTickerConnGoldenRestricted(t *testing.T) {
	// The testdata stands in for the real-socket path, where the rule
	// applies.
	runGoldenAs(t, PerTickerConn, "pertickerconn", "e2ebatch/internal/realtcp")
}

func TestPerTickerConnGoldenShardScoped(t *testing.T) {
	// internal/shard is scoped too: the same patterns must be flagged
	// there (the driver ticker survives only via its ignore hatch).
	runGoldenAs(t, PerTickerConn, "pertickerconn", "e2ebatch/internal/shard")
}

func TestPerTickerConnGoldenUnrestricted(t *testing.T) {
	// Outside realtcp/shard, runtime timers are out of scope — sim
	// drivers, figures, and cmd binaries use them freely.
	runExpectNone(t, PerTickerConn, "pertickerconn_ok")
}

func TestHotPathGolden(t *testing.T) {
	runGolden(t, HotPath, "hotpath")
}

func TestEscapesGolden(t *testing.T) {
	runGolden(t, Escapes, "escapes")
}

func TestMutexHoldGoldenUnrestricted(t *testing.T) {
	// Outside qstate/core/policy the same code is not this analyzer's
	// business (realtcp's server does socket I/O under its own locks by
	// design), so the want comments in the testdata must all go unmatched.
	runExpectNone(t, MutexHold, "mutexhold")
}

func TestSpanFinishGolden(t *testing.T) {
	runGolden(t, SpanFinish, "spanfinish")
}
