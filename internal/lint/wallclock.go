package lint

import (
	"go/ast"
)

// simOnlyPackages are the packages where only the simulated clock is legal:
// the discrete-event simulator and everything that replays it. A wall-clock
// read there silently decouples the estimator's integrals from virtual time
// and destroys the serial-vs-parallel golden determinism PR 1 established —
// the sweep would still run, but its figures would depend on host load.
var simOnlyPackages = []string{
	"e2ebatch/internal/sim",
	"e2ebatch/internal/tcpsim",
	"e2ebatch/internal/figures",
	"e2ebatch/internal/analytic",
	"e2ebatch/internal/faults",
}

// WallClock flags time.Now / time.Since / time.Until inside the
// simulated-time packages. Real-socket code (internal/realtcp, cmd/...)
// legitimately reads the wall clock and is out of scope.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock reads inside simulated-time packages",
	Run:  runWallClock,
}

func runWallClock(p *Pass) {
	if !pathIsOneOf(p.Pkg.Path(), simOnlyPackages...) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(p.TypesInfo, call)
			for _, name := range []string{"Now", "Since", "Until"} {
				if objIs(obj, "time", name) {
					p.Reportf(call.Pos(),
						"wall-clock time.%s in simulated-time package %s; use the simulation clock (sim.Time / qstate.Time)",
						name, p.Pkg.Path())
				}
			}
			return true
		})
	}
}
