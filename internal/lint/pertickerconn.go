package lint

import (
	"go/ast"
	"go/types"
)

// perConnPackages are the packages whose connection scheduling must live on
// the shard timer wheels: the real-socket path and the shard engine itself.
// Elsewhere (sim, figures, cmd, tests) runtime timers are out of scope.
var perConnPackages = []string{
	"e2ebatch/internal/realtcp",
	"e2ebatch/internal/shard",
}

// PerTickerConn guards the shared-nothing shard rearchitecture (DESIGN.md
// §15): one runtime ticker per *shard*, never per connection. Before it, the
// real-socket path spawned a ticker goroutine per endpoint — one goroutine
// plus one runtime timer per connection, which topples far below the
// 50k-connection target and is exactly the leak PR 9 removed from
// realtcp's engine port.
//
// Two rules, both limited to perConnPackages:
//
//  1. the runtime timer constructors — time.NewTicker, time.NewTimer,
//     time.Tick, time.AfterFunc — are flagged anywhere: per-connection or
//     not, recurring schedules in these packages belong on shard.Wheel
//     (engine ticks via shard.Clock). The single legitimate ticker — the
//     one driving each shard's loop — carries the //lint:ignore hatch with
//     its justification;
//  2. the blocking waits — time.Sleep, time.After — are flagged only inside
//     spawned-goroutine contexts (a `go func(){...}` body, or a function
//     that is a go-statement target elsewhere in the package), the
//     per-connection handler shape. Caller-side pacing loops (RunLoad's
//     send loop, Fleet.Run's hold window) legitimately sleep.
var PerTickerConn = &Analyzer{
	Name: "pertickerconn",
	Doc:  "forbid per-connection runtime timers in shard-scheduled packages",
	Run:  runPerTickerConn,
}

// perConnTimerFns are banned outright in scope; perConnWaitFns only on
// spawned goroutines.
var perConnTimerFns = []string{"NewTicker", "NewTimer", "Tick", "AfterFunc"}
var perConnWaitFns = []string{"Sleep", "After"}

func runPerTickerConn(p *Pass) {
	if !pathIsOneOf(p.Pkg.Path(), perConnPackages...) {
		return
	}
	// Pass 1: named functions that are direct go-statement targets anywhere
	// in the package (`go c.readLoop()`), same resolution as locksafety.
	goTargets := map[types.Object]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				if obj := calleeObj(p.TypesInfo, gs.Call); obj != nil {
					goTargets[obj] = true
				}
			}
			return true
		})
	}
	for _, fd := range funcDecls(p) {
		checkPerTickerFunc(p, fd, goTargets[p.TypesInfo.Defs[fd.Name]])
	}
}

func checkPerTickerFunc(p *Pass, fd *ast.FuncDecl, isGoTarget bool) {
	// Go-literal bodies spawned within this function.
	var goLits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				goLits = append(goLits, lit)
			}
		}
		return true
	})
	inGoLit := func(n ast.Node) bool {
		for _, lit := range goLits {
			if n.Pos() >= lit.Body.Pos() && n.End() <= lit.Body.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(p.TypesInfo, call)
		for _, name := range perConnTimerFns {
			if objIs(obj, "time", name) {
				p.Reportf(call.Pos(),
					"time.%s in %s: per-connection timers belong on the shard wheel (shard.Wheel / shard.Clock), one runtime ticker per shard",
					name, fd.Name.Name)
			}
		}
		for _, name := range perConnWaitFns {
			if !objIs(obj, "time", name) {
				continue
			}
			switch {
			case inGoLit(call):
				p.Reportf(call.Pos(),
					"time.%s on a goroutine spawned in %s: per-connection waits belong on the shard wheel, not a parked goroutine",
					name, fd.Name.Name)
			case isGoTarget:
				p.Reportf(call.Pos(),
					"time.%s in %s, which runs as a goroutine (`go %s(...)` in this package): schedule on the shard wheel instead of blocking",
					name, fd.Name.Name, fd.Name.Name)
			}
		}
		return true
	})
}
