package lint

// The golden-test harness: each analyzer has a testdata/src/<name> package
// whose files carry `// want "regexp"` comments on the lines where a
// diagnostic is expected (several per line allowed). runGolden loads the
// directory as a loose package, runs exactly one analyzer, and fails on any
// unmatched expectation or unexpected diagnostic — the same contract as
// x/tools' analysistest, minus the dependency.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

// sharedLoader builds one Loader (one `go list -export -deps` run) for the
// whole test binary.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader("")
	})
	if loaderErr != nil {
		t.Fatalf("building loader: %v", loaderErr)
	}
	return loader
}

func runGolden(t *testing.T, a *Analyzer, dir string) {
	runGoldenAs(t, a, dir, "")
}

func runGoldenAs(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	full := filepath.Join("testdata", "src", dir)
	pkg, err := sharedLoader(t).LoadDirAs(full, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", full, err)
	}
	diags := Check(pkg, []*Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := map[string]map[int][]*want{} // file -> line -> expectations
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		wants[name] = map[int][]*want{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, raw := range parseWants(t, c.Text) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), raw, err)
					}
					line := pkg.Fset.Position(c.Pos()).Line
					wants[name][line] = append(wants[name][line], &want{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.raw)
				}
			}
		}
	}
}

// runExpectNone asserts the analyzer produces zero diagnostics over the
// directory, disregarding any want comments (used to show a rule is scoped
// off outside its restricted packages).
func runExpectNone(t *testing.T, a *Analyzer, dir string) {
	runExpectNoneAs(t, a, dir, "")
}

// runExpectNoneAs is runExpectNone under an assumed import path (used to
// show a rule exempts a specific package, e.g. internal/engine).
func runExpectNoneAs(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	full := filepath.Join("testdata", "src", dir)
	pkg, err := sharedLoader(t).LoadDirAs(full, asPath)
	if err != nil {
		t.Fatalf("loading %s: %v", full, err)
	}
	for _, d := range Check(pkg, []*Analyzer{a}) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

var wantRe = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)\s*$`)
var wantStrRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWants extracts the quoted regexps from a `// want "a" "b"` comment.
func parseWants(t *testing.T, text string) []string {
	m := wantRe.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	var out []string
	for _, q := range wantStrRe.FindAllString(m[1], -1) {
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("bad want string %s: %v", q, err)
		}
		out = append(out, s)
	}
	return out
}
