// Benchmark harness: one benchmark per table/figure in the paper's
// evaluation, each regenerating the corresponding rows/series on the
// simulated testbed and reporting the headline numbers as benchmark
// metrics. The tables themselves print once per benchmark (run with
// `go test -bench=. -benchmem`).
//
// Absolute values come from the calibrated simulator (DESIGN.md §2); the
// metrics to compare against the paper are:
//
//	Figure 4a  slo-extension-x   paper: 1.93
//	Figure 4a  latency-gain-x    paper: 2.80
package e2ebatch_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"e2ebatch"
	"e2ebatch/internal/core"
	"e2ebatch/internal/engine"
	"e2ebatch/internal/figures"
	"e2ebatch/internal/obs"
	"e2ebatch/internal/policy"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/tcpsim"
)

// benchDur is the virtual duration of each simulated run. Longer runs
// tighten the statistics but scale wall-clock time linearly.
const benchDur = 300 * time.Millisecond

var printed = map[string]bool{}

func printOnce(b *testing.B, key string, f func()) {
	b.Helper()
	if !printed[key] {
		printed[key] = true
		fmt.Println()
		f()
	}
}

// BenchmarkFigure1 regenerates the Figure 1 outcome matrix (α=2, β=4, n=3,
// c ∈ {1,3,5}): batching improves both metrics, trades off, or degrades
// both, purely as a function of the client cost c.
func BenchmarkFigure1(b *testing.B) {
	var rows []figures.Fig1Row
	for i := 0; i < b.N; i++ {
		rows = figures.Fig1()
	}
	printOnce(b, "fig1", func() { figures.WriteFig1(os.Stdout, rows) })
	b.ReportMetric(rows[0].Batch.AvgLatency, "c1-batch-avglat")
	b.ReportMetric(rows[0].NoBatch.AvgLatency, "c1-plain-avglat")
}

// BenchmarkFigure2 regenerates Figure 2: the fixed-load bare-metal vs VM
// client comparison whose outcome flips with client-side cost.
func BenchmarkFigure2(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.Fig2Out
	for i := 0; i < b.N; i++ {
		out = figures.Fig2(cal, benchDur, 11)
	}
	printOnce(b, "fig2", func() { figures.WriteFig2(os.Stdout, out) })
	b.ReportMetric(out.VM.ClientCPU/out.Bare.ClientCPU, "vm-client-cpu-x")
	b.ReportMetric(boolMetric(out.Bare.NagleHelps), "bare-nagle-helps")
	b.ReportMetric(boolMetric(out.VM.NagleHelps), "vm-nagle-helps")
}

// BenchmarkFigure4a regenerates the Figure 4a sweep: measured and estimated
// latency vs offered load with batching on/off, the cutoff lines, the
// SLO-range extension (paper: 1.93×) and the latency gain at the boundary
// (paper: 2.80×).
func BenchmarkFigure4a(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.Fig4Out
	for i := 0; i < b.N; i++ {
		out = figures.Fig4a(cal, figures.DefaultFig4Rates(), benchDur, 7)
	}
	printOnce(b, "fig4a", func() { figures.WriteFig4(os.Stdout, out) })
	b.ReportMetric(out.Extension, "slo-extension-x")
	b.ReportMetric(out.LatencyGain, "latency-gain-x")
	b.ReportMetric(out.MeasuredCutoff/1000, "cutoff-meas-kRPS")
	b.ReportMetric(out.EstimatedCutoff/1000, "cutoff-est-kRPS")
}

// BenchmarkFigure4b regenerates the Figure 4b sweep (95:5 SET:GET mix with
// 16 KiB GET responses) — the heterogeneous workload on which byte-based
// estimation degrades.
func BenchmarkFigure4b(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.Fig4Out
	for i := 0; i < b.N; i++ {
		out = figures.Fig4b(cal, figures.DefaultFig4Rates(), benchDur, 7)
	}
	printOnce(b, "fig4b", func() { figures.WriteFig4(os.Stdout, out) })
	b.ReportMetric(out.Extension, "slo-extension-x")
	b.ReportMetric(out.MeasuredCutoff/1000, "cutoff-meas-kRPS")
	b.ReportMetric(out.EstimatedCutoff/1000, "cutoff-est-kRPS")
}

// BenchmarkDynamicToggle regenerates the dynamic-toggling experiment: the
// paper's "had they been used to dynamically toggle Nagle batching" (§4)
// run as a closed ε-greedy loop against both static baselines.
func BenchmarkDynamicToggle(b *testing.B) {
	cal := figures.DefaultCalib()
	rates := []float64{10000, 30000, 45000, 60000}
	var out *figures.ToggleOut
	for i := 0; i < b.N; i++ {
		out = figures.Toggle(cal, rates, benchDur, 7)
	}
	printOnce(b, "toggle", func() { figures.WriteToggle(os.Stdout, out) })
	last := out.Points[len(out.Points)-1]
	b.ReportMetric(float64(last.Off)/float64(last.Dynamic), "dyn-vs-off-x")
	b.ReportMetric(100*last.OnShare, "on-share-%")
}

// BenchmarkHints regenerates the semantic-gap table (§3.3): per-unit
// estimation error vs the create/complete hints on the heterogeneous
// workload with a syscall-batching client.
func BenchmarkHints(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.HintsOut
	for i := 0; i < b.N; i++ {
		out = figures.Hints(cal, []float64{10000, 30000}, benchDur, 7, 4)
	}
	printOnce(b, "hints", func() { figures.WriteHints(os.Stdout, out) })
	r := out.Rows[0]
	b.ReportMetric(100*errOf(r.Hints, r.Measured), "hint-err-%")
	b.ReportMetric(100*errOf(r.ByUnit[tcpsim.UnitBytes], r.Measured), "bytes-err-%")
}

// BenchmarkAIMD regenerates the §5 AIMD batch-limit experiment: gradual
// cork adaptation instead of on/off toggling.
func BenchmarkAIMD(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.AIMDOut
	for i := 0; i < b.N; i++ {
		out = figures.AIMD(cal, []float64{10000, 60000}, benchDur, 7)
	}
	printOnce(b, "aimd", func() { figures.WriteAIMD(os.Stdout, out) })
	b.ReportMetric(float64(out.Rows[0].FinalCork), "low-load-cork-B")
	b.ReportMetric(float64(out.Rows[1].FinalCork), "high-load-cork-B")
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

func errOf(est, meas time.Duration) float64 {
	if meas == 0 {
		return 0
	}
	d := est - meas
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(meas)
}

// ---- hot-path microbenchmarks (the §3.1 "easily maintained" claim) ----

// BenchmarkCounterTrack measures one TRACK call — the cost added to every
// queue transition in the stack.
func BenchmarkCounterTrack(b *testing.B) {
	var q e2ebatch.QueueState
	q.Init(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Track(e2ebatch.Time(2*i), 1)
		q.Track(e2ebatch.Time(2*i+1), -1)
	}
}

// BenchmarkGetAvgs measures one GETAVGS evaluation.
func BenchmarkGetAvgs(b *testing.B) {
	prev := e2ebatch.Snapshot{}
	now := e2ebatch.Snapshot{Time: 1 << 30, Total: 1 << 20, Integral: 1 << 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e2ebatch.GetAvgs(prev, now)
	}
}

// BenchmarkWireExchange measures encoding + decoding one 36-byte metadata
// exchange — the per-segment overhead of §3.2.
func BenchmarkWireExchange(b *testing.B) {
	ws := e2ebatch.WireState{
		Unacked:  qstate.WireQueue{TimeUS: 1, Total: 2, IntegralUS: 3},
		Unread:   qstate.WireQueue{TimeUS: 4, Total: 5, IntegralUS: 6},
		AckDelay: qstate.WireQueue{TimeUS: 7, Total: 8, IntegralUS: 9},
	}
	buf := make([]byte, e2ebatch.WireSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e2ebatch.EncodeWire(buf, ws); err != nil {
			b.Fatal(err)
		}
		if _, err := e2ebatch.DecodeWire(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndEstimate measures one full two-sided estimate update.
func BenchmarkEndToEndEstimate(b *testing.B) {
	mk := func(lat time.Duration) e2ebatch.Avgs {
		return e2ebatch.Avgs{Latency: lat, Throughput: 1e4, Valid: true, Departures: 10}
	}
	local := e2ebatch.Delays{Unacked: mk(50 * time.Microsecond), Unread: mk(10 * time.Microsecond)}
	remote := e2ebatch.Delays{Unread: mk(20 * time.Microsecond), AckDelay: mk(5 * time.Microsecond)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e2ebatch.EstimateE2E(local, remote)
	}
}

// BenchmarkHintAPI measures one create/complete round — the per-request
// cost a cooperative application pays (§3.3).
func BenchmarkHintAPI(b *testing.B) {
	var now e2ebatch.Time
	tr := e2ebatch.NewHintTracker(func() e2ebatch.Time { return now })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now++
		tr.Create(1)
		now++
		tr.Complete(1)
	}
}

// BenchmarkTrackerTrack measures the concurrency-safe TRACK variant — one
// locked add/remove pair on the qstate.Tracker (//e2e:hotpath, 0 allocs).
func BenchmarkTrackerTrack(b *testing.B) {
	tr := qstate.NewTracker(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Track(qstate.Time(2*i), 1)
		tr.Track(qstate.Time(2*i+1), -1)
	}
}

// BenchmarkSharedEstimatorUpdate measures one concurrency-safe estimator
// update — the per-connection per-tick cost of the spinlock-and-mirrors
// SharedEstimator (//e2e:hotpath, 0 allocs).
func BenchmarkSharedEstimatorUpdate(b *testing.B) {
	var e core.SharedEstimator
	var st qstate.State
	st.Init(0)
	now := qstate.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += qstate.Time(time.Millisecond)
		st.Track(now, 1)
		now += qstate.Time(time.Millisecond)
		st.Track(now, -1)
		_ = e.Update(core.Sample{Local: core.Queues{Unacked: st.Snapshot(now)}, At: now})
	}
}

// benchPort is a minimal engine.Port for the tick benchmark: live queue
// counters, decision stored without logging.
type benchPort struct {
	st   qstate.State
	last engine.Decision
}

func (p *benchPort) Snapshot(now qstate.Time) core.Sample {
	return core.Sample{Local: core.Queues{Unacked: p.st.Snapshot(now)}, At: now}
}
func (p *benchPort) Apply(d engine.Decision) error { p.last = d; return nil }
func (p *benchPort) SelfContained() bool           { return true }

// benchToggler satisfies engine.Controller with a fixed decision, so the
// benchmark measures the loop rather than a policy.
type benchToggler struct{}

func (benchToggler) Observe(time.Duration, float64, bool) policy.Mode { return policy.BatchOn }
func (benchToggler) ObserveDegraded() policy.Mode                     { return policy.BatchOn }
func (benchToggler) Mode() policy.Mode                                { return policy.BatchOn }
func (benchToggler) Stats() policy.TogglerStats                       { return policy.TogglerStats{} }

// BenchmarkEngineTick measures one full controller-driven decision tick —
// snapshot, estimate, decide, apply (//e2e:hotpath, 0 allocs steady-state).
func BenchmarkEngineTick(b *testing.B) {
	p := &benchPort{}
	p.st.Init(0)
	ep := engine.New(engine.Config{Controller: benchToggler{}, CorkOnBytes: 16 << 10}, p)
	now := qstate.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += qstate.Time(time.Millisecond)
		p.st.Track(now, 1)
		now += qstate.Time(time.Millisecond)
		p.st.Track(now, -1)
		ep.Tick(now)
	}
}

// BenchmarkRingPush measures publishing one decision record into the
// telemetry ring (//e2e:hotpath, 0 allocs).
func BenchmarkRingPush(b *testing.B) {
	r := obs.NewRing(1024)
	rec := obs.DecisionRecord{Endpoint: "bench", Mode: "batch-on", Valid: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(&rec)
	}
}

// BenchmarkObserveTick measures the full telemetry fan-out of one tick:
// counters, gauges, latency histogram and the ring record
// (//e2e:hotpath, 0 allocs).
func BenchmarkObserveTick(b *testing.B) {
	reg := obs.NewRegistry()
	o := obs.NewEngineObserver(obs.NewEngineMetrics(reg), obs.NewRing(1024))
	perPort := make([]core.Estimate, 1)
	samples := make([]core.Sample, 1)
	now := qstate.Time(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		now += qstate.Time(time.Millisecond)
		samples[0] = core.Sample{At: now, RemoteOK: true, RemoteAt: now}
		perPort[0] = core.Estimate{Latency: time.Millisecond, Throughput: 1000, Valid: true}
		o.ObserveTick(now, engine.TickResult{
			Estimate: perPort[0],
			PerPort:  perPort,
			Mode:     policy.BatchOn,
			Applied:  true,
			Samples:  samples,
		})
	}
}

// BenchmarkTickAblation regenerates the §5 toggling-granularity ablation:
// decision-tick period vs dynamic-policy quality at a high load.
func BenchmarkTickAblation(b *testing.B) {
	cal := figures.DefaultCalib()
	ivs := []time.Duration{200 * time.Microsecond, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond}
	var out *figures.TickAblationOut
	for i := 0; i < b.N; i++ {
		out = figures.TickAblation(cal, 50000, ivs, benchDur, 7)
	}
	printOnce(b, "tick", func() { figures.WriteTickAblation(os.Stdout, out) })
	b.ReportMetric(100*out.Rows[0].OnShare, "finest-on-share-%")
	b.ReportMetric(100*out.Rows[len(out.Rows)-1].OnShare, "coarsest-on-share-%")
}

// BenchmarkExchangeAblation regenerates the §5 metadata-exchange-frequency
// ablation: estimates must stay accurate as exchanges become rare.
func BenchmarkExchangeAblation(b *testing.B) {
	cal := figures.DefaultCalib()
	ivs := []time.Duration{0, time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond}
	var out *figures.ExchangeAblationOut
	for i := 0; i < b.N; i++ {
		out = figures.ExchangeAblation(cal, 35000, ivs, benchDur, 7)
	}
	printOnce(b, "exchange", func() { figures.WriteExchangeAblation(os.Stdout, out) })
	first, last := out.Rows[0], out.Rows[len(out.Rows)-1]
	b.ReportMetric(float64(first.Exchanges), "exchanges-everyseg")
	b.ReportMetric(float64(last.Exchanges), "exchanges-50ms")
	b.ReportMetric(100*errOf(last.OnlineAvg, first.OnlineAvg), "estimate-drift-%")
}

// BenchmarkMultiConn regenerates the multi-connection aggregation
// experiment (§3.2): per-connection estimates combined into one policy
// decision covering all connections.
func BenchmarkMultiConn(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.MultiConnOut
	for i := 0; i < b.N; i++ {
		out = figures.MultiConn(cal, 4, 50000, benchDur, 7)
	}
	printOnce(b, "multiconn", func() { figures.WriteMultiConn(os.Stdout, out) })
	b.ReportMetric(100*errOf(out.Aggregate.Latency, out.Measured), "agg-err-%")
	b.ReportMetric(float64(out.Measured)/float64(out.DynamicMeasured), "dyn-rescue-x")
}

// BenchmarkTimeline regenerates the convergence trace: a dynamic run
// started in the collapsing mode digging itself out via the estimates.
func BenchmarkTimeline(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.TimelineOut
	for i := 0; i < b.N; i++ {
		out = figures.Timeline(cal, 50000, benchDur, 7)
	}
	printOnce(b, "timeline", func() { figures.WriteTimeline(os.Stdout, out) })
	last := out.Dynamic[len(out.Dynamic)-1]
	b.ReportMetric(float64(last.Mean())/float64(out.StaticOn), "final-window-vs-on-x")
}

// BenchmarkGROAblation regenerates the receive-side vs sender-side batching
// comparison.
func BenchmarkGROAblation(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.GROAblationOut
	for i := 0; i < b.N; i++ {
		out = figures.GROAblation(cal, []float64{25000, 40000, 55000, 70000}, benchDur, 7)
	}
	printOnce(b, "gro", func() { figures.WriteGROAblation(os.Stdout, out) })
	r := out.Rows[1]
	b.ReportMetric(float64(r.OffNoGRO)/float64(r.OffGRO), "gro-rescue-x")
}

// BenchmarkCScan regenerates the client-cost sweep: Figure 1's c-axis in
// the full system.
func BenchmarkCScan(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.CScanOut
	for i := 0; i < b.N; i++ {
		out = figures.CScan(cal, []float64{1, 1.25, 1.5, 1.75, 2, 2.5}, benchDur, 11)
	}
	printOnce(b, "cscan", func() { figures.WriteCScan(os.Stdout, out) })
	b.ReportMetric(out.FlipScale, "flip-scale")
}

// BenchmarkBanditCompare regenerates the ε-greedy vs UCB1 controller
// comparison.
func BenchmarkBanditCompare(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.PolicyCompareOut
	for i := 0; i < b.N; i++ {
		out = figures.PolicyCompare(cal, []float64{10000, 45000, 60000}, benchDur, 7)
	}
	printOnce(b, "bandits", func() { figures.WritePolicyCompare(os.Stdout, out) })
	r := out.Rows[1]
	b.ReportMetric(float64(r.EpsGreedy)/float64(time.Microsecond), "eps-45k-us")
	b.ReportMetric(float64(r.UCB)/float64(time.Microsecond), "ucb-45k-us")
}

// BenchmarkLossRobustness regenerates the estimator-under-loss sweep.
func BenchmarkLossRobustness(b *testing.B) {
	cal := figures.DefaultCalib()
	var out *figures.LossOut
	for i := 0; i < b.N; i++ {
		out = figures.LossRobustness(cal, 20000, []float64{0, 0.001, 0.01}, benchDur, 7)
	}
	printOnce(b, "loss", func() { figures.WriteLoss(os.Stdout, out) })
	lossy := out.Rows[len(out.Rows)-1]
	b.ReportMetric(100*errOf(lossy.EstBytes, lossy.Measured), "lossy-est-err-%")
}
