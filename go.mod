module e2ebatch

go 1.22
