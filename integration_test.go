// Integration tests: the public API driven end to end against the full
// simulated stack — the cross-module contracts a downstream user relies on.
package e2ebatch_test

import (
	"testing"
	"time"

	"e2ebatch"
	"e2ebatch/internal/figures"
	"e2ebatch/internal/kv"
	"e2ebatch/internal/loadgen"
	"e2ebatch/internal/netem"
	"e2ebatch/internal/qstate"
	"e2ebatch/internal/sim"
	"e2ebatch/internal/tcpsim"
)

// TestOnlineEstimateMatchesOfflineAnalysis: the online path (wire-format
// exchanges received from the peer) and the offline path (exact snapshots
// from both endpoints) must produce closely matching estimates over the
// same run — the equivalence between the paper's future TCP-option design
// and its ethtool-offline prototype.
func TestOnlineEstimateMatchesOfflineAnalysis(t *testing.T) {
	s := sim.New(21)
	cs := tcpsim.NewStack(s, "client")
	ss := tcpsim.NewStack(s, "server")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	cfg := tcpsim.DefaultConfig()
	cfg.Nagle = false
	cc, sc := tcpsim.Connect(cs, ss, link, cfg)
	store := kv.NewStore(func() time.Duration { return s.Now().Duration() })
	kv.NewSimServer(kv.NewEngine(store), sc, kv.DefaultSimServerConfig())

	// Online estimator: local exact snapshots + the peer's wire states.
	var online e2ebatch.Estimator
	prime := func() e2ebatch.Sample {
		ua, ur, ad := cc.Snapshots(tcpsim.UnitBytes)
		smp := e2ebatch.Sample{Local: e2ebatch.Queues{Unacked: ua, Unread: ur, AckDelay: ad}}
		if ws, _, ok := cc.PeerWireState(); ok {
			smp.Remote, smp.RemoteOK = ws, true
		}
		return smp
	}
	// Offline: exact snapshots from both sides.
	offline := func() (e2ebatch.Queues, e2ebatch.Queues) {
		ua, ur, ad := cc.Snapshots(tcpsim.UnitBytes)
		sua, sur, sad := sc.Snapshots(tcpsim.UnitBytes)
		return e2ebatch.Queues{Unacked: ua, Unread: ur, AckDelay: ad},
			e2ebatch.Queues{Unacked: sua, Unread: sur, AckDelay: sad}
	}

	gen := loadgen.New(s, cc, loadgen.DefaultConfig(25000, 50*time.Millisecond), loadgen.SetWorkload(16, 4096))
	end := gen.Start()
	warm := sim.Time(10 * time.Millisecond)
	var l0, r0 e2ebatch.Queues
	s.At(warm, func() {
		online.Update(prime())
		l0, r0 = offline()
	})
	s.RunUntil(end)
	gen.FlushSends()
	onlineEst := online.Update(prime())
	l1, r1 := offline()
	offlineEst := e2ebatch.EstimateE2E(e2ebatch.DelaysBetween(l0, l1), e2ebatch.DelaysBetween(r0, r1))
	gen.Finalize()

	if !onlineEst.Valid || !offlineEst.Valid {
		t.Fatalf("validity: online=%v offline=%v", onlineEst.Valid, offlineEst.Valid)
	}
	diff := onlineEst.Latency - offlineEst.Latency
	if diff < 0 {
		diff = -diff
	}
	// The online view loses only the µs quantization of the wire format
	// and the staleness of the last exchange.
	if float64(diff) > 0.15*float64(offlineEst.Latency)+float64(20*time.Microsecond) {
		t.Fatalf("online %v vs offline %v", onlineEst.Latency, offlineEst.Latency)
	}
}

// TestEstimateOrderingPredictsBatchingWinner: across the sweep, whenever
// the measured latencies of the two modes differ by a clear margin, the
// byte estimates must rank them identically — the property that makes the
// estimates usable for toggling decisions even where their absolute values
// drift.
func TestEstimateOrderingPredictsBatchingWinner(t *testing.T) {
	cal := figures.DefaultCalib()
	f := figures.Fig4a(cal, []float64{5000, 15000, 45000, 60000}, 200*time.Millisecond, 3)
	for _, p := range f.Points {
		mOff, mOn := p.Off.Measured, p.On.Measured
		eOff, eOn := p.Off.Est[tcpsim.UnitBytes].Latency, p.On.Est[tcpsim.UnitBytes].Latency
		margin := float64(mOff)/float64(mOn) > 1.3 || float64(mOn)/float64(mOff) > 1.3
		if !margin {
			continue
		}
		if (mOff < mOn) != (eOff < eOn) {
			t.Errorf("rate %v: measured ranks (%v vs %v) but estimates rank (%v vs %v)",
				p.Rate, mOff, mOn, eOff, eOn)
		}
	}
}

// TestPublicAPIWireInterop: a WireState built from live connection
// snapshots round-trips through the public codec and yields the same
// averages as the full-precision path (to wire-format resolution).
func TestPublicAPIWireInterop(t *testing.T) {
	var q e2ebatch.QueueState
	q.Init(0)
	q.Track(0, 5)
	q.Track(e2ebatch.Time(3*time.Millisecond), -5)
	snap0 := e2ebatch.Snapshot{}
	snap1 := q.Snapshot(e2ebatch.Time(10 * time.Millisecond))

	exact := e2ebatch.GetAvgs(snap0, snap1)
	w0, w1 := e2ebatch.ToWireQueue(snap0), e2ebatch.ToWireQueue(snap1)
	wire := e2ebatch.WireAvgs(w0, w1)
	if !exact.Valid || !wire.Valid {
		t.Fatal("validity")
	}
	diff := exact.Latency - wire.Latency
	if diff < 0 {
		diff = -diff
	}
	if diff > 2*time.Microsecond {
		t.Fatalf("wire %v vs exact %v", wire.Latency, exact.Latency)
	}

	ws := e2ebatch.WireState{Unacked: w1}
	buf := make([]byte, e2ebatch.WireSize)
	if _, err := e2ebatch.EncodeWire(buf, ws); err != nil {
		t.Fatal(err)
	}
	got, err := e2ebatch.DecodeWire(buf)
	if err != nil || got != ws {
		t.Fatalf("round trip: %+v, %v", got, err)
	}
}

// TestHintsEqualMeasuredOnPublicAPI wires the hint tracker through the full
// stack via the public facade and checks it reproduces the load generator's
// own measurement.
func TestHintsEqualMeasuredOnPublicAPI(t *testing.T) {
	s := sim.New(5)
	cs := tcpsim.NewStack(s, "client")
	ss := tcpsim.NewStack(s, "server")
	link := netem.NewLink(s, "lnk", netem.Config{BitsPerSec: 100_000_000_000, Propagation: 2 * time.Microsecond})
	cfg := tcpsim.DefaultConfig()
	cc, sc := tcpsim.Connect(cs, ss, link, cfg)
	store := kv.NewStore(func() time.Duration { return s.Now().Duration() })
	kv.NewSimServer(kv.NewEngine(store), sc, kv.DefaultSimServerConfig())

	lcfg := loadgen.DefaultConfig(15000, 100*time.Millisecond)
	lcfg.Warmup = 0
	gen := loadgen.New(s, cc, lcfg, loadgen.SetWorkload(16, 2048))
	tr := e2ebatch.NewHintTracker(func() e2ebatch.Time { return qstate.Time(s.Now()) })
	gen.Hints = tr
	est := e2ebatch.NewHintEstimator(tr)
	est.Sample()
	res := gen.Run()
	a := est.Sample()
	if !a.Valid {
		t.Fatal("hint estimate invalid")
	}
	meas := float64(res.Latency.Mean())
	if h := float64(a.Latency); h < 0.75*meas || h > 1.3*meas {
		t.Fatalf("hints %v vs measured %v", a.Latency, res.Latency.Mean())
	}
}
