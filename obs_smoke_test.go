package e2ebatch_test

// End-to-end smoke test for the PR-8 telemetry plane: build the real
// kvserver binary, run it with -obs on an ephemeral port, drive one
// request through a real TCP client, scrape /metrics and /debug, then
// SIGINT it and require a clean exit. This is what `make obs-smoke` (and
// tier-1 via `make test`) runs; it needs no curl — the scrape is net/http.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"e2ebatch/internal/realtcp"
	"e2ebatch/internal/resp"
)

func TestObsSmokeKvserver(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes and sockets; skipped in short mode")
	}

	bin := filepath.Join(t.TempDir(), "kvserver")
	build := exec.Command("go", "build", "-o", bin, "./cmd/kvserver")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building kvserver: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-obs", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting kvserver: %v", err)
	}
	defer cmd.Process.Kill()

	// The binary announces both listeners on stdout; -addr/-obs :0 means
	// the test learns the real ports from these lines.
	var obsAddr, srvAddr string
	sc := bufio.NewScanner(stdout)
	for obsAddr == "" || srvAddr == "" {
		if !sc.Scan() {
			break
		}
		if f := strings.Fields(sc.Text()); len(f) >= 4 && f[0] == "obs" {
			obsAddr = f[3]
		} else if len(f) >= 4 && f[0] == "kvserver" {
			srvAddr = f[3]
		}
	}
	if obsAddr == "" || srvAddr == "" {
		t.Fatalf("kvserver never announced its listeners (obs=%q srv=%q)", obsAddr, srvAddr)
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// One real request so the latency summary has a sample.
	c, err := realtcp.Dial(srvAddr, 16)
	if err != nil {
		t.Fatalf("dialing kvserver: %v", err)
	}
	if err := c.Send(resp.AppendCommand(nil, []byte("SET"), []byte("smoke"), []byte("ok"))); err != nil {
		t.Fatalf("sending SET: %v", err)
	}
	for i := 0; c.Outstanding() > 0; i++ {
		if i > 2000 {
			t.Fatal("SET never completed")
		}
		time.Sleep(time.Millisecond)
	}
	c.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", obsAddr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, family := range []string{
		"# TYPE e2e_engine_ticks_total counter",
		"# TYPE e2e_engine_degraded_ticks_total counter",
		"# TYPE e2e_engine_mode_flips_total counter",
		"# TYPE e2e_estimator_staleness_seconds gauge",
		"# TYPE e2e_request_latency_seconds summary",
		`e2e_request_latency_seconds{quantile="0.99"}`,
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics is missing %q;\n%s", family, metrics)
		}
	}
	if !strings.Contains(metrics, "e2e_request_latency_seconds_count 1") {
		t.Errorf("latency summary should have counted the SET:\n%s", metrics)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, `"e2e_engine_ticks_total"`) {
		t.Errorf("/debug/vars missing engine counters: %s", vars)
	}
	// A pure server runs no control loop, so the decision ring is empty —
	// but the endpoint must answer.
	if body := get("/debug/decisions?n=5"); strings.TrimSpace(body) != "" {
		t.Errorf("server-side decision ring should be empty, got %q", body)
	}

	// Clean shutdown on SIGINT: Serve returns nil after Close, exit 0.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signaling: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("kvserver exited uncleanly on SIGINT: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("kvserver did not exit within 10s of SIGINT")
	}
}
